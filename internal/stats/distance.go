package stats

import (
	"math"
	"sort"
)

// KolmogorovSmirnov returns the two-sample KS statistic
// sup_x |F_a(x) − F_b(x)| between the empirical CDFs of a and b.
// It is the natural headline number for "how close is a reconstructed
// inter-arrival distribution to the target's" and is reported by the
// similarity experiments. Returns 1 when either sample is empty (the
// distributions share no mass).
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Step both CDFs past the next distinct value so ties advance
		// together; the supremum of |F_a − F_b| is attained just
		// after a sample point.
		x := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// Wasserstein1 returns the first Wasserstein (earth mover) distance
// between the empirical distributions of a and b: the integral of
// |F_a − F_b| over the value domain. Unlike KS it is sensitive to
// *how far* mass moved, which is what distinguishes Acceleration
// (everything shifted 100x) from Revision (idle mass deleted) even
// when both have KS ≈ 1. Returns +Inf when either sample is empty.
func Wasserstein1(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	// Merge the supports; between consecutive support points the CDF
	// difference is constant.
	var sum float64
	var i, j int
	prev := math.Min(sa[0], sb[0])
	for i < len(sa) || j < len(sb) {
		var x float64
		switch {
		case i >= len(sa):
			x = sb[j]
		case j >= len(sb):
			x = sa[i]
		default:
			x = math.Min(sa[i], sb[j])
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		sum += math.Abs(fa-fb) * (x - prev)
		prev = x
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
	}
	return sum
}

// TotalVariationBinned returns the total-variation distance between
// two samples after binning both onto the same histogram. It is the
// bucket-mass view of distribution difference: ½ Σ |p_a − p_b|.
// Binning parameters follow the supplied histogram template (which is
// not modified).
func TotalVariationBinned(a, b []float64, binning Binning, lo, hi float64, buckets int) (float64, error) {
	ha, err := NewHistogram(binning, lo, hi, buckets)
	if err != nil {
		return 0, err
	}
	hb, err := NewHistogram(binning, lo, hi, buckets)
	if err != nil {
		return 0, err
	}
	for _, v := range a {
		ha.Observe(v)
	}
	for _, v := range b {
		hb.Observe(v)
	}
	_, pa := ha.PDF()
	_, pb := hb.PDF()
	var sum float64
	for i := range pa {
		sum += math.Abs(pa[i] - pb[i])
	}
	return sum / 2, nil
}
