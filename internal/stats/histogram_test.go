package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(LinearBins, 0, 10, 0); err == nil {
		t.Fatal("want error for zero buckets")
	}
	if _, err := NewHistogram(LinearBins, 10, 10, 4); err == nil {
		t.Fatal("want error for empty domain")
	}
	if _, err := NewHistogram(LogBins, 0, 10, 4); err == nil {
		t.Fatal("want error for log bins with lo=0")
	}
}

func TestLinearBucketPlacement(t *testing.T) {
	h, err := NewHistogram(LinearBins, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.5)  // bucket 0
	h.Observe(9.5)  // bucket 9
	h.Observe(5.0)  // bucket 5
	h.Observe(-3)   // clamps to 0
	h.Observe(42)   // clamps to 9
	h.Observe(10.0) // exactly hi clamps to last bucket
	if h.Count(0) != 2 {
		t.Fatalf("bucket0 = %d, want 2", h.Count(0))
	}
	if h.Count(9) != 3 {
		t.Fatalf("bucket9 = %d, want 3", h.Count(9))
	}
	if h.Count(5) != 1 {
		t.Fatalf("bucket5 = %d, want 1", h.Count(5))
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
}

func TestLogBucketPlacement(t *testing.T) {
	// Decades 1..10^4 with 4 buckets: one bucket per decade.
	h, err := NewHistogram(LogBins, 1, 1e4, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(2)    // decade [1,10)
	h.Observe(50)   // [10,100)
	h.Observe(500)  // [100,1000)
	h.Observe(5000) // [1000,10000)
	for i := 0; i < 4; i++ {
		if h.Count(i) != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Count(i))
		}
	}
	// Non-positive value clamps to bucket 0 rather than NaN-ing.
	h.Observe(0)
	if h.Count(0) != 2 {
		t.Fatal("zero should clamp into first log bucket")
	}
}

func TestHistogramCenters(t *testing.T) {
	h, _ := NewHistogram(LinearBins, 0, 10, 5)
	if got := h.Center(0); !almostEq(got, 1, 1e-12) {
		t.Fatalf("center0 = %v, want 1", got)
	}
	if got := h.Center(4); !almostEq(got, 9, 1e-12) {
		t.Fatalf("center4 = %v, want 9", got)
	}
	hl, _ := NewHistogram(LogBins, 1, 100, 2)
	// Geometric midpoints of [1,10] and [10,100].
	if got := hl.Center(0); !almostEq(got, math.Sqrt(10), 1e-9) {
		t.Fatalf("log center0 = %v", got)
	}
	if got := hl.Center(1); !almostEq(got, math.Sqrt(1000), 1e-9) {
		t.Fatalf("log center1 = %v", got)
	}
}

func TestPDFSumsToOne(t *testing.T) {
	h, _ := NewHistogram(LinearBins, 0, 100, 13)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i % 100))
	}
	_, ps := h.PDF()
	var sum float64
	for _, p := range ps {
		sum += p
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("PDF sums to %v", sum)
	}
}

func TestCDFMonotoneReachesOne(t *testing.T) {
	h, _ := NewHistogram(LogBins, 1, 1e6, 60)
	for i := 1; i <= 500; i++ {
		h.Observe(float64(i * i))
	}
	xs, cs := h.CDF()
	prev := 0.0
	for i, c := range cs {
		if c < prev {
			t.Fatalf("CDF decreasing at %d", i)
		}
		prev = c
		if i > 0 && xs[i] <= xs[i-1] {
			t.Fatalf("CDF x not increasing at %d", i)
		}
	}
	if !almostEq(cs[len(cs)-1], 1, 1e-9) {
		t.Fatalf("CDF ends at %v", cs[len(cs)-1])
	}
}

func TestObserveN(t *testing.T) {
	h, _ := NewHistogram(LinearBins, 0, 10, 2)
	h.ObserveN(1, 7)
	if h.Count(0) != 7 || h.Total() != 7 {
		t.Fatalf("ObserveN: count=%d total=%d", h.Count(0), h.Total())
	}
}

// Property: every observation lands in exactly one bucket (total counts
// always equal observations) for arbitrary values.
func TestHistogramTotalProperty(t *testing.T) {
	h, _ := NewHistogram(LogBins, 0.1, 1e7, 80)
	f := func(vals []float64) bool {
		before := h.Total()
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Observe(v)
			n++
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.Count(i)
		}
		return h.Total() == before+uint64(n) && sum == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinningString(t *testing.T) {
	if LinearBins.String() != "linear" || LogBins.String() != "log" {
		t.Fatal("Binning.String broken")
	}
	if Binning(9).String() == "" {
		t.Fatal("unknown binning should still stringify")
	}
}
