package stats

import (
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. It supports evaluation at arbitrary points, quantile lookup,
// and export as (x, F(x)) step points suitable for interpolation.
type ECDF struct {
	// sorted, deduplicated sample values
	xs []float64
	// cum[i] = P(X <= xs[i])
	cum []float64
	n   int
}

// NewECDF builds an ECDF from sample (which it copies). An empty sample
// yields a degenerate ECDF whose Eval is 0 everywhere.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	e := &ECDF{n: len(s)}
	if len(s) == 0 {
		return e
	}
	// Collapse duplicates so the step function has strictly increasing
	// support — required by the PCHIP interpolator downstream.
	xs := make([]float64, 0, len(s))
	cum := make([]float64, 0, len(s))
	count := 0
	for i := 0; i < len(s); i++ {
		count++
		if i+1 == len(s) || s[i+1] != s[i] {
			xs = append(xs, s[i])
			cum = append(cum, float64(count)/float64(len(s)))
		}
	}
	e.xs, e.cum = xs, cum
	return e
}

// N returns the sample size.
func (e *ECDF) N() int { return e.n }

// Support returns the distinct sorted sample values (do not mutate).
func (e *ECDF) Support() []float64 { return e.xs }

// Probs returns the cumulative probabilities aligned with Support (do
// not mutate).
func (e *ECDF) Probs() []float64 { return e.cum }

// Eval returns P(X <= x).
func (e *ECDF) Eval(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	// index of first support point > x
	i := sort.SearchFloat64s(e.xs, x)
	if i < len(e.xs) && e.xs[i] == x {
		return e.cum[i]
	}
	if i == 0 {
		return 0
	}
	return e.cum[i-1]
}

// Quantile returns the smallest x with P(X <= x) >= q, clamping q into
// (0, 1]. It returns 0 for an empty sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	if q <= 0 {
		return e.xs[0]
	}
	if q > 1 {
		q = 1
	}
	i := sort.Search(len(e.cum), func(i int) bool { return e.cum[i] >= q })
	if i == len(e.cum) {
		i = len(e.cum) - 1
	}
	return e.xs[i]
}

// Points returns copies of the (x, F(x)) step points. Safe to mutate.
func (e *ECDF) Points() (xs, cs []float64) {
	xs = make([]float64, len(e.xs))
	cs = make([]float64, len(e.cum))
	copy(xs, e.xs)
	copy(cs, e.cum)
	return xs, cs
}

// MaxGapBelow returns, for plotting convenience, the largest probability
// jump in the ECDF and the x at which it occurs. For a unimodal "global
// maxima" distribution (paper Fig 5a) this is a sharp single spike; for
// "chunky middle" shapes (Fig 5b) the max jump is small relative to the
// spread.
func (e *ECDF) MaxGapBelow() (x, gap float64) {
	prev := 0.0
	for i, c := range e.cum {
		if d := c - prev; d > gap {
			gap = d
			x = e.xs[i]
		}
		prev = c
	}
	return x, gap
}
