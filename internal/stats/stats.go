// Package stats provides the statistical substrate TraceTracker's
// inference model is built on: descriptive statistics, histograms with
// linear or logarithmic binning, empirical probability density and
// cumulative distribution functions, and ordinary least-squares linear
// regression.
//
// All functions operate on float64 slices and never mutate their inputs
// unless documented otherwise. NaN and Inf values are rejected by the
// constructors that can meaningfully reject them; plain reducers follow
// IEEE-754 semantics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by constructors and reducers that require at
// least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 when xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (division by n, not
// n-1), matching the paper's Algorithm 1 which uses the variance of the
// PDF values as the outlier margin basis. Returns 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on empty input so
// that misuse fails loudly during development; callers with possibly
// empty data should guard with len.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (the "R-7" method used by most
// statistics environments). It copies and sorts internally and returns
// 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return Min(xs)
	}
	if q >= 1 {
		return Max(xs)
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted is Quantile for data the caller has already sorted
// ascending; it performs no allocation.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary captures the usual descriptive statistics of a sample in one
// pass-friendly struct.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
	Sum    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty when xs is
// empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	return Summary{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		StdDev: StdDev(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Median: quantileSorted(s, 0.5),
		P90:    quantileSorted(s, 0.90),
		P99:    quantileSorted(s, 0.99),
		Sum:    sum,
	}, nil
}

// LinearFit holds the result of an ordinary least-squares straight-line
// fit y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Slope*x + f.Intercept }

// LeastSquares fits a straight line to the points (xs[i], ys[i]) by
// ordinary least squares. The slices must have equal, non-zero length.
//
// The paper's Algorithm 1 (lines 4-6) uses the shortcut
// slope = std(PDF)/std(T); that estimator has the right magnitude but an
// arbitrary sign, so we implement the standard covariance form
// slope = cov(x,y)/var(x), which coincides in magnitude whenever the
// data are perfectly linear and is well defined otherwise. The ablation
// bench compares both (see PaperSlopeFit).
func LeastSquares(xs, ys []float64) (LinearFit, error) {
	if len(xs) == 0 {
		return LinearFit{}, ErrEmpty
	}
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched lengths")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		// Vertical data: fall back to a flat line through the mean so
		// downstream outlier detection still works.
		return LinearFit{Slope: 0, Intercept: my}, nil
	}
	slope := sxy / sxx
	return LinearFit{Slope: slope, Intercept: my - slope*mx}, nil
}

// PaperSlopeFit reproduces Algorithm 1's literal slope estimator
// (std(y)/std(x), intercept from the means). It is provided for the
// fidelity ablation; LeastSquares is what the pipeline uses by default.
func PaperSlopeFit(xs, ys []float64) (LinearFit, error) {
	if len(xs) == 0 {
		return LinearFit{}, ErrEmpty
	}
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched lengths")
	}
	sx := StdDev(xs)
	if sx == 0 {
		return LinearFit{Slope: 0, Intercept: Mean(ys)}, nil
	}
	slope := StdDev(ys) / sx
	return LinearFit{Slope: slope, Intercept: Mean(ys) - slope*Mean(xs)}, nil
}
