package stats

import (
	"errors"
	"fmt"
	"math"
)

// Binning selects how a Histogram partitions its domain.
type Binning int

const (
	// LinearBins partitions [min,max] into equal-width buckets.
	LinearBins Binning = iota
	// LogBins partitions [min,max] into buckets of equal width in
	// log10 space. Inter-arrival times span seven orders of magnitude
	// (Fig 1 of the paper plots 10^-1..10^7 µs), so log binning is the
	// pipeline default; the ablation bench compares against linear.
	LogBins
)

// String implements fmt.Stringer.
func (b Binning) String() string {
	switch b {
	case LinearBins:
		return "linear"
	case LogBins:
		return "log"
	default:
		return fmt.Sprintf("Binning(%d)", int(b))
	}
}

// Histogram is a fixed-bucket histogram over a float64 domain.
type Histogram struct {
	binning Binning
	lo, hi  float64 // domain, in linear space
	counts  []uint64
	total   uint64
	// log-space cached bounds when binning == LogBins
	llo, lhi float64
}

// NewHistogram creates a histogram with n buckets over [lo, hi].
// For LogBins, lo must be > 0. hi must exceed lo and n must be >= 1.
func NewHistogram(binning Binning, lo, hi float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, errors.New("stats: histogram needs at least one bucket")
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram domain [%g,%g]", lo, hi)
	}
	h := &Histogram{binning: binning, lo: lo, hi: hi, counts: make([]uint64, n)}
	if binning == LogBins {
		if lo <= 0 {
			return nil, errors.New("stats: log histogram requires lo > 0")
		}
		h.llo, h.lhi = math.Log10(lo), math.Log10(hi)
	}
	return h, nil
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Total returns the number of observations recorded, including clamped
// out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// Observe records one sample. Values outside [lo, hi] are clamped into
// the first/last bucket: for inter-arrival analysis losing the exact
// magnitude of an extreme outlier is preferable to dropping it, because
// the CDF tail mass matters for idle-period accounting.
func (h *Histogram) Observe(x float64) {
	h.counts[h.bucketOf(x)]++
	h.total++
}

// ObserveN records the same sample n times.
func (h *Histogram) ObserveN(x float64, n uint64) {
	h.counts[h.bucketOf(x)] += n
	h.total += n
}

func (h *Histogram) bucketOf(x float64) int {
	var frac float64
	switch h.binning {
	case LogBins:
		if x <= 0 {
			return 0
		}
		frac = (math.Log10(x) - h.llo) / (h.lhi - h.llo)
	default:
		frac = (x - h.lo) / (h.hi - h.lo)
	}
	i := int(frac * float64(len(h.counts)))
	if i < 0 {
		return 0
	}
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// Count returns the raw count of bucket i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Center returns the representative x value (bucket midpoint; geometric
// midpoint for log bins) of bucket i.
func (h *Histogram) Center(i int) float64 {
	n := float64(len(h.counts))
	switch h.binning {
	case LogBins:
		w := (h.lhi - h.llo) / n
		return math.Pow(10, h.llo+(float64(i)+0.5)*w)
	default:
		w := (h.hi - h.lo) / n
		return h.lo + (float64(i)+0.5)*w
	}
}

// EdgeLo returns the inclusive lower edge of bucket i.
func (h *Histogram) EdgeLo(i int) float64 {
	n := float64(len(h.counts))
	switch h.binning {
	case LogBins:
		w := (h.lhi - h.llo) / n
		return math.Pow(10, h.llo+float64(i)*w)
	default:
		w := (h.hi - h.lo) / n
		return h.lo + float64(i)*w
	}
}

// PDF returns parallel slices (x, p) where x[i] is the bucket center and
// p[i] the empirical probability mass of bucket i. Empty buckets are
// included; the caller may filter. Total()==0 yields zero-valued p.
func (h *Histogram) PDF() (xs, ps []float64) {
	xs = make([]float64, len(h.counts))
	ps = make([]float64, len(h.counts))
	for i := range h.counts {
		xs[i] = h.Center(i)
		if h.total > 0 {
			ps[i] = float64(h.counts[i]) / float64(h.total)
		}
	}
	return xs, ps
}

// CDF returns parallel slices (x, c) where c[i] is the cumulative
// probability at the bucket-i upper edge.
func (h *Histogram) CDF() (xs, cs []float64) {
	xs = make([]float64, len(h.counts))
	cs = make([]float64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if i+1 < len(h.counts) {
			xs[i] = h.EdgeLo(i + 1)
		} else {
			xs[i] = h.hi
		}
		if h.total > 0 {
			cs[i] = float64(cum) / float64(h.total)
		}
	}
	return xs, cs
}
