package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Population variance of {2,4,4,4,5,5,7,9} is 4.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("variance of <2 samples must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(empty) should panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{10, 20}
	if got := Quantile(xs, 0.5); !almostEq(got, 15, 1e-12) {
		t.Fatalf("Quantile(0.5) = %v, want 15", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || !almostEq(s.Mean, 5.5, 1e-12) || s.Min != 1 || s.Max != 10 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEq(s.Median, 5.5, 1e-12) || !almostEq(s.Sum, 55, 1e-12) {
		t.Fatalf("bad median/sum: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestLeastSquaresExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	f, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 3, 1e-12) || !almostEq(f.Intercept, -7, 1e-12) {
		t.Fatalf("fit = %+v, want slope 3 intercept -7", f)
	}
	if !almostEq(f.At(10), 23, 1e-12) {
		t.Fatalf("At(10) = %v", f.At(10))
	}
}

func TestLeastSquaresNegativeSlope(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{4, 2, 0}
	f, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, -2, 1e-12) {
		t.Fatalf("slope = %v, want -2", f.Slope)
	}
}

func TestLeastSquaresDegenerateX(t *testing.T) {
	f, err := LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope != 0 || !almostEq(f.Intercept, 2, 1e-12) {
		t.Fatalf("degenerate fit = %+v", f)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := LeastSquares([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestPaperSlopeFitMagnitude(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 2, 4, 6}
	f, err := PaperSlopeFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 2, 1e-12) {
		t.Fatalf("paper slope = %v, want 2", f.Slope)
	}
}

// Property: mean is within [min, max] and shift-equivariant.
func TestMeanPropertyShift(t *testing.T) {
	f := func(raw []int16, shift int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + float64(shift)
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		return almostEq(Mean(shifted), m+float64(shift), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative and translation-invariant.
func TestVariancePropertyTranslation(t *testing.T) {
	f := func(raw []int16, shift int8) bool {
		xs := make([]float64, len(raw))
		sh := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			sh[i] = float64(v) + float64(shift)
		}
		v1, v2 := Variance(xs), Variance(sh)
		return v1 >= 0 && almostEq(v1, v2, 1e-4*(1+v1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0001; q += 0.01 {
		v := Quantile(xs, q)
		if v < prev-1e-9 {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}
