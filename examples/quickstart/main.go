// Quickstart: reconstruct a decade-old block trace for a modern
// all-flash array in five steps.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// 1. Obtain an "old" block trace. Real deployments would load one
	// with trace.ReadCSV / ReadMSRC / ReadSPC; here we synthesize an
	// FIU-style workload and collect it on the simulated 2007-era HDD
	// node, which is exactly how the public corpora were captured.
	profile, _ := workload.Lookup("homes")
	app := workload.Generate(profile, workload.GenOptions{Ops: 20000, Seed: 1})
	old := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
	old.TsdevKnown = false // FIU traces carry no completion timestamps

	// 2. Build the reconstruction target: the paper's evaluation node,
	// four NVMe SSDs striped into an all-flash array.
	target := device.NewArray(device.DefaultArrayConfig())

	// 3. Reconstruct. TraceTracker infers per-instruction idle
	// periods from the old trace's inter-arrival structure, replays
	// the instructions on the target with those idles, and restores
	// asynchronous-mode timing.
	remastered, rep, err := core.Reconstruct(old, target, core.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reconstruct: %v\n", err)
		os.Exit(1)
	}

	// 4. Inspect what the inference recovered.
	t := &report.Table{Title: "reconstruction", Headers: []string{"metric", "old", "remastered"}}
	t.AddRow("requests", old.Len(), remastered.Len())
	t.AddRow("duration", old.Duration(), remastered.Duration())
	t.AddRow("median Tintt", medianIntt(old), medianIntt(remastered))
	t.Render(os.Stdout)

	m := &report.Table{Title: "inferred context", Headers: []string{"metric", "value"}}
	m.AddRow("idle instructions", rep.IdleCount)
	m.AddRow("total idle preserved", rep.IdleTotal)
	m.AddRow("async instructions", rep.AsyncCount)
	m.AddRow("beta (us/sector)", rep.Model.BetaMicros)
	m.AddRow("eta (us/sector)", rep.Model.EtaMicros)
	m.Render(os.Stdout)

	// 5. The remastered trace is a regular *trace.Trace: write it out
	// with trace.WriteCSV for downstream simulators.
	fmt.Println("ok: remastered trace ready for simulation studies")
}

func medianIntt(t *trace.Trace) time.Duration {
	us := t.InterArrivalMicros()
	if len(us) == 0 {
		return 0
	}
	sort.Float64s(us)
	return time.Duration(us[len(us)/2] * float64(time.Microsecond))
}
