// Corpus characterization: sweep a cross-section of the 31 workload
// families, reconstruct each trace, and tabulate the idle structure —
// the per-family view behind the paper's Figures 16 and 17 and the
// system implications discussed in Section V-B.
//
//	go run ./examples/characterization
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	families := []string{
		"MSNFS", "CFS", "DAP", // MSPS: idle-frequent, idle-short
		"ikki", "homes", "madmax", // FIU: idle-rare, idle-long
		"wdev", "web", "src1", // MSRC: mixed
	}
	t := &report.Table{
		Title: "idle structure across corpora",
		Headers: []string{
			"workload", "set", "idle freq", "avg idle",
			"idle<=10ms", "10-100ms", ">100ms", "async",
		},
	}
	for _, name := range families {
		p, ok := workload.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %s\n", name)
			os.Exit(1)
		}
		app := workload.Generate(p, workload.GenOptions{Ops: 8000, Seed: 4})
		old := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
		old.TsdevKnown = p.TsdevKnown
		if !p.TsdevKnown {
			for i := range old.Requests {
				old.Requests[i].Latency = 0
			}
		}
		_, rep, err := core.Reconstruct(old, device.NewArray(device.DefaultArrayConfig()), core.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		var short, mid, long int
		for _, d := range rep.Idle {
			switch {
			case d == 0:
			case d <= 10*time.Millisecond:
				short++
			case d <= 100*time.Millisecond:
				mid++
			default:
				long++
			}
		}
		var avg time.Duration
		if rep.IdleCount > 0 {
			avg = rep.IdleTotal / time.Duration(rep.IdleCount)
		}
		denom := float64(max(rep.IdleCount, 1))
		t.AddRow(name, p.Set,
			report.Percent(float64(rep.IdleCount)/float64(old.Len())),
			avg,
			report.Percent(float64(short)/denom),
			report.Percent(float64(mid)/denom),
			report.Percent(float64(long)/denom),
			report.Percent(float64(rep.AsyncCount)/float64(old.Len())),
		)
	}
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("Reading: MSPS families idle often but briefly; FIU/MSRC families idle")
	fmt.Println("rarely but for seconds — so nearly all of their wall time is idle, the")
	fmt.Println("background-task budget the paper's Section V-B discusses.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
