// Verification walkthrough: how much of a trace's hidden idle
// structure can the inference model recover when nothing but
// inter-arrival times is available? This example reproduces the
// paper's Section V-A methodology end to end on one FIU-style trace
// and prints the full confusion matrix per injected period.
//
//	go run ./examples/verification
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/infer"
	"repro/internal/report"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	// Build a base trace with NO natural idles: every idle the model
	// then reports at a non-injected position is a hard false
	// positive, making the metrics exact.
	profile, _ := workload.Lookup("webusers")
	profile.IdleFreq = 0
	app := workload.Generate(profile, workload.GenOptions{Ops: 25000, Seed: 3})
	base := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
	base.TsdevKnown = false
	for i := range base.Requests {
		base.Requests[i].Latency = 0 // FIU collection recorded none
	}

	t := &report.Table{
		Title:   "idle recovery from inter-arrival times alone (webusers, FIU-style)",
		Headers: []string{"injected", "Detect(TP)", "Detect(FP)", "Len(TP) secured", "Len(FP) mean"},
	}
	for i, period := range []time.Duration{
		100 * time.Microsecond, time.Millisecond,
		10 * time.Millisecond, 100 * time.Millisecond,
	} {
		injected, truth := verify.Inject(base, verify.InjectionSpec{
			Period: period, Frac: 0.10, Seed: int64(i + 1),
		})
		model, err := infer.Estimate(injected, infer.EstimateOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "estimate: %v\n", err)
			os.Exit(1)
		}
		estimated, _ := infer.Decompose(model, injected)
		m := verify.Evaluate(truth, estimated)
		t.AddRow(report.FormatDuration(period),
			report.Percent(m.DetectionTP()), report.Percent(m.DetectionFP()),
			report.Percent(m.LenTPSecured()), m.LenFPMean())
	}
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("Reading: sub-millisecond idles blur into device latency (the paper's")
	fmt.Println("\"blurring boundary\"); by 10ms the model recovers nearly all injected")
	fmt.Println("idle time with the right length.")
}
