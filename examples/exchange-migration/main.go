// Exchange migration study: the paper's motivating scenario. A mail
// server's block trace was collected on an HDD cluster a decade ago;
// we want to know how the workload behaves on a modern all-flash
// array. Naively accelerating or replaying the trace distorts the
// answer — this example quantifies by how much, using the ground
// truth the simulated substrate gives us.
//
//	go run ./examples/exchange-migration
package main

import (
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// The Exchange workload: 5000-user mail pattern, bursty async
	// flushes, frequent short idles (MSPS-style).
	profile := workload.Exchange()
	app := workload.Generate(profile, workload.GenOptions{Ops: 15000, Seed: 2026})

	// Collect the trace on the OLD system, and — because this is a
	// simulation study with a perfect crystal ball — also run the
	// same application on the NEW system to get the ground truth the
	// reconstruction methods are trying to predict.
	oldRes := app.Execute(device.NewHDD(device.DefaultHDDConfig()))
	truth := app.Execute(device.NewArray(device.DefaultArrayConfig()))
	old := oldRes.Trace
	old.TsdevKnown = false

	// Reconstruct with every method.
	methods := []baseline.Method{
		baseline.MethodAcceleration,
		baseline.MethodRevision,
		baseline.MethodFixedTh,
		baseline.MethodDynamic,
		baseline.MethodTraceTracker,
	}
	t := &report.Table{
		Title:   "Exchange on flash: predicted vs actual",
		Headers: []string{"method", "duration", "avg |dTintt| vs actual", "idle kept"},
	}
	t.AddRow("actual (NEW)", truth.Trace.Duration(), "-", report.Percent(1))
	actualIdle := truth.TotalThink()
	for _, m := range methods {
		rec, err := baseline.Run(m, old, device.NewArray(device.DefaultArrayConfig()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v: %v\n", m, err)
			os.Exit(1)
		}
		gap, _ := core.InterArrivalGap(rec, truth.Trace)
		kept := idleKept(rec, actualIdle)
		t.AddRow(m.String(), rec.Duration(), gap, report.Percent(kept))
	}
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("Reading: Acceleration compresses everything (idle lost, huge gap);")
	fmt.Println("Revision gets service times right but drops think time; TraceTracker")
	fmt.Println("tracks the actual flash-migrated behaviour closest.")
}

// idleKept estimates how much of the actual idle mass a reconstruction
// retained: inter-arrival time in excess of its own recorded service
// time, relative to the ground-truth think total.
func idleKept(t *trace.Trace, actual interface{ Nanoseconds() int64 }) float64 {
	if actual.Nanoseconds() == 0 {
		return 0
	}
	var sum int64
	ia := t.InterArrivals()
	for i := 0; i < len(ia); i++ {
		if excess := ia[i] - t.Requests[i].Latency; excess > 0 {
			sum += excess.Nanoseconds()
		}
	}
	frac := float64(sum) / float64(actual.Nanoseconds())
	if frac > 1 {
		frac = 1
	}
	return frac
}
