// Lifetime study distortion: the paper's reference [8] improves NAND
// lifetime using traces accelerated 100x. This example replays that
// methodology on the simulated substrate: the same workload trace,
// accelerated by increasing factors, drives the FTL simulator — and
// the background-GC picture a lifetime study would base its
// conclusions on changes with the factor, exactly the distortion
// TraceTracker's reconstruction avoids.
//
//	go run ./examples/lifetime-study
package main

import (
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/ftl"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	// A write-heavy FIU workload with a diurnal cycle: long night
	// idles are precisely the budget background GC lives on.
	p, _ := workload.Lookup("homes")
	app := workload.Generate(p, workload.GenOptions{
		Ops: 12000, Seed: 7, DiurnalOps: 6000,
	})
	old := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
	old.TsdevKnown = false

	ftlCfg := ftl.Config{
		Blocks: 96, PagesPerBlock: 32, PageKB: 4,
		OverprovisionPct: 0.10, GCTriggerFreeBlocks: 4, BackgroundGCTarget: 16,
	}

	t := &report.Table{
		Title:   "FTL study vs trace acceleration factor (homes, diurnal)",
		Headers: []string{"trace", "WAF", "foreground GC", "stall", "idle GC time"},
	}
	for _, factor := range []float64{1, 10, 100, 1000} {
		tr := baseline.Acceleration(old, factor)
		res, err := ftl.Run(ftl.New(ftlCfg), tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "factor %v: %v\n", factor, err)
			os.Exit(1)
		}
		label := fmt.Sprintf("accelerated %gx", factor)
		if factor == 1 {
			label = "original"
		}
		t.AddRow(label, fmt.Sprintf("%.3f", res.Stats.WAF()),
			report.Percent(res.ForegroundShare()),
			res.Stats.ForegroundStall, res.Stats.IdleBudgetUsed)
	}

	// The TraceTracker alternative: remaster for the flash target
	// instead of blind acceleration.
	tt, err := baseline.TraceTracker(old, device.NewArray(device.DefaultArrayConfig()))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetracker: %v\n", err)
		os.Exit(1)
	}
	res, err := ftl.Run(ftl.New(ftlCfg), tt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftl: %v\n", err)
		os.Exit(1)
	}
	t.AddRow("TraceTracker", fmt.Sprintf("%.3f", res.Stats.WAF()),
		report.Percent(res.ForegroundShare()),
		res.Stats.ForegroundStall, res.Stats.IdleBudgetUsed)
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("Reading: each decade of acceleration strips another decade of idle")
	fmt.Println("budget; by 100x (the factor [8] used) background GC is squeezed and")
	fmt.Println("the stall picture no longer resembles the original workload's.")
}
