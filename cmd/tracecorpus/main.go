// Command tracecorpus manages a content-addressed trace corpus
// (internal/corpus) offline — the same store tracetrackerd serves, so
// fleets of traces can be ingested, inspected and garbage-collected
// without a running daemon.
//
// Usage:
//
//	tracecorpus -data DIR add [-format auto] FILE...   ingest traces (dedup by digest)
//	tracecorpus -data DIR add -                        ingest stdin
//	tracecorpus -data DIR ls                           catalogue table
//	tracecorpus -data DIR info DIGEST                  full entry JSON (unique prefix ok)
//	tracecorpus -data DIR get DIGEST [-o FILE]         emit the stored bytes
//	tracecorpus -data DIR gc                           drop staging leftovers, broken
//	                                                   pairs, and results whose input
//	                                                   trace is gone
//
// Run gc only while no daemon is ingesting into the same directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/corpus"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracecorpus: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	global := flag.NewFlagSet("tracecorpus", flag.ContinueOnError)
	data := global.String("data", "", "corpus store root directory (required)")
	global.Usage = func() {
		fmt.Fprintln(global.Output(), "usage: tracecorpus -data DIR {add|ls|info|get|gc} [args]")
		global.PrintDefaults()
	}
	if err := global.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	if global.NArg() == 0 {
		return fmt.Errorf("missing subcommand: add, ls, info, get or gc")
	}
	store, err := corpus.Open(*data)
	if err != nil {
		return err
	}
	cmd, rest := global.Arg(0), global.Args()[1:]
	switch cmd {
	case "add":
		return cmdAdd(store, rest, stdout)
	case "ls":
		return cmdLs(store, stdout)
	case "info":
		return cmdInfo(store, rest, stdout)
	case "get":
		return cmdGet(store, rest, stdout)
	case "gc":
		return cmdGC(store, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func cmdAdd(store *corpus.Store, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("add", flag.ContinueOnError)
	format := fs.String("format", "auto", `input format: "auto", "csv", "bin", "msrc", "spc"`)
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"ingest decode workers (digesting pipelines with the parallel parse; <2 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("add needs at least one trace file (or - for stdin)")
	}
	store.SetParallel(*parallel)
	for _, path := range fs.Args() {
		var (
			e       corpus.Entry
			created bool
			err     error
		)
		if path == "-" {
			e, created, err = store.Ingest(os.Stdin, *format)
		} else {
			e, created, err = store.IngestFile(path, *format)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		verb := "added"
		if !created {
			verb = "exists"
		}
		fmt.Fprintf(stdout, "%s %s %s (%s, %d requests, %.1f MB)\n",
			verb, e.Digest, path, e.Format, e.Requests, float64(e.Size)/1e6)
	}
	return nil
}

func cmdLs(store *corpus.Store, stdout io.Writer) error {
	entries := store.Entries()
	if len(entries) == 0 {
		fmt.Fprintln(stdout, "corpus is empty")
		return nil
	}
	t := &report.Table{
		Title:   fmt.Sprintf("corpus (%d traces)", len(entries)),
		Headers: []string{"digest", "format", "requests", "duration", "MB", "read", "seq", "tsdev", "name"},
	}
	for _, e := range entries {
		t.AddRow(e.Digest[:12], e.Format, e.Requests,
			report.FormatDuration(e.Duration),
			fmt.Sprintf("%.1f", float64(e.Size)/1e6),
			report.Percent(e.ReadFraction), report.Percent(e.SeqFraction),
			e.TsdevKnown, e.Name)
	}
	t.Render(stdout)
	return nil
}

func cmdInfo(store *corpus.Store, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("info needs exactly one digest")
	}
	e, err := store.Resolve(args[0])
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

func cmdGet(store *corpus.Store, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("get", flag.ContinueOnError)
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("get needs exactly one digest")
	}
	rc, _, err := store.OpenBlob(fs.Arg(0))
	if err != nil {
		return err
	}
	defer rc.Close()
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = io.Copy(w, rc)
	return err
}

func cmdGC(store *corpus.Store, stdout io.Writer) error {
	start := time.Now()
	st, err := store.GC()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "gc: removed %d staging files, %d orphaned results, %d broken objects in %v\n",
		st.TmpRemoved, st.ResultsRemoved, st.ObjectsRemoved, time.Since(start).Round(time.Millisecond))
	return nil
}
