package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// writeSample writes a small csv trace and returns its path and bytes.
func writeSample(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	tr := &trace.Trace{
		Name: "cli-sample", Workload: "w", Set: "FIU", TsdevKnown: true,
		Requests: []trace.Request{
			{Arrival: 0, LBA: 10, Sectors: 8, Op: trace.Read, Latency: 100 * time.Microsecond},
			{Arrival: time.Millisecond, LBA: 18, Sectors: 8, Op: trace.Write, Latency: 150 * time.Microsecond},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// TestAddLsInfoGetGC drives the whole CLI surface against one store.
func TestAddLsInfoGetGC(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "store")
	path, raw := writeSample(t, dir)

	var out bytes.Buffer
	if err := run([]string{"-data", data, "add", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "added ") {
		t.Fatalf("add output: %q", out.String())
	}
	digest := strings.Fields(out.String())[1]

	// Re-adding dedups.
	out.Reset()
	if err := run([]string{"-data", data, "add", "-format", "csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "exists ") {
		t.Fatalf("dedup output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-data", data, "ls"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), digest[:12]) || !strings.Contains(out.String(), "cli-sample") {
		t.Fatalf("ls output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-data", data, "info", digest[:8]}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), digest) || !strings.Contains(out.String(), `"requests": 2`) {
		t.Fatalf("info output: %q", out.String())
	}

	// get to stdout and to a file, both byte-identical to the upload.
	out.Reset()
	if err := run([]string{"-data", data, "get", digest}, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), raw) {
		t.Fatal("get bytes diverge")
	}
	outPath := filepath.Join(dir, "fetched.csv")
	if err := run([]string{"-data", data, "get", "-o", outPath, digest[:8]}, &out); err != nil {
		t.Fatal(err)
	}
	fetched, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetched, raw) {
		t.Fatal("get -o bytes diverge")
	}

	// gc on a clean store removes nothing.
	out.Reset()
	if err := run([]string{"-data", data, "gc"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "removed 0 staging files, 0 orphaned results, 0 broken objects") {
		t.Fatalf("gc output: %q", out.String())
	}

	// The trace is still there afterwards.
	out.Reset()
	if err := run([]string{"-data", data, "info", digest}, &out); err != nil {
		t.Fatal(err)
	}
}

// TestCLIErrors covers the argument failure surface.
func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "store")
	var out bytes.Buffer
	for name, args := range map[string][]string{
		"no-data":        {"ls"},
		"no-subcommand":  {"-data", data},
		"unknown":        {"-data", data, "bogus"},
		"add-no-files":   {"-data", data, "add"},
		"info-no-digest": {"-data", data, "info"},
		"info-unknown":   {"-data", data, "info", "ffff"},
		"get-no-digest":  {"-data", data, "get"},
		"add-missing":    {"-data", data, "add", filepath.Join(dir, "nope.csv")},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
