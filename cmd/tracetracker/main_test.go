package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/trace"
)

func sample() *trace.Trace {
	return &trace.Trace{
		Name: "cli", Workload: "w", Set: "FIU",
		Requests: []trace.Request{
			{Arrival: 0, LBA: 100, Sectors: 8, Op: trace.Read, Latency: 100 * time.Microsecond},
			{Arrival: time.Millisecond, LBA: 200, Sectors: 16, Op: trace.Write, Latency: 300 * time.Microsecond},
		},
	}
}

func TestReadWriteTraceFormats(t *testing.T) {
	dir := t.TempDir()
	orig := sample()
	for _, format := range []string{"csv", "bin"} {
		path := filepath.Join(dir, "t."+format)
		if err := writeTrace(path, format, "", orig); err != nil {
			t.Fatalf("%s: write: %v", format, err)
		}
		got, err := readTrace(path, format)
		if err != nil {
			t.Fatalf("%s: read: %v", format, err)
		}
		if !reflect.DeepEqual(got.Requests, orig.Requests) {
			t.Fatalf("%s: round trip lost data", format)
		}
	}
}

func TestWriteTraceBlktrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.blk")
	if err := writeTrace(path, "blktrace", "", sample()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty blktrace output")
	}
}

func TestWriteTraceFIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.fio")
	// The job file goes to stderr; silence it for the test.
	old := os.Stderr
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stderr = null
	err := writeTrace(path, "fio", "/dev/test", sample())
	os.Stderr = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("empty fio output")
	}
}

func TestUnknownFormats(t *testing.T) {
	if _, err := readTrace("", "nope"); err == nil {
		t.Fatal("unknown input format accepted")
	}
	if err := writeTrace(filepath.Join(t.TempDir(), "x"), "nope", "", sample()); err == nil {
		t.Fatal("unknown output format accepted")
	}
}

func TestReadTraceMissingFile(t *testing.T) {
	if _, err := readTrace("/nonexistent/path.csv", "csv"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRunStreamMatchesSequential drives the -stream code path end to
// end and checks it reproduces the sequential pipeline's output file.
func TestRunStreamMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	old := &trace.Trace{Name: "cli-stream", TsdevKnown: true}
	now := time.Duration(0)
	for i := 0; i < 300; i++ {
		old.Requests = append(old.Requests, trace.Request{
			Arrival: now, LBA: uint64(i * 64), Sectors: 8,
			Op:      trace.Read,
			Latency: 80 * time.Microsecond,
		})
		now += time.Duration(200+i%500) * time.Microsecond
		if i%50 == 49 {
			now += 5 * time.Millisecond
		}
	}
	inPath := filepath.Join(dir, "in.bin")
	if err := writeTrace(inPath, "bin", "", old); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		devName string
		target  device.Device
	}{
		{"new", device.NewArray(device.DefaultArrayConfig())},
		// The HDD target drives the epoch-pipelined engine path from
		// the CLI — no serial fallback, same bytes.
		{"hdd", device.NewHDD(device.DefaultHDDConfig())},
	} {
		outPath := filepath.Join(dir, "out-"+tc.devName+".csv")
		if err := runStream(inPath, "bin", outPath, "csv", "", "tracetracker", tc.devName, 4, 0, false); err != nil {
			t.Fatal(err)
		}

		want, _, err := core.Reconstruct(old, tc.target, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantPath := filepath.Join(dir, "want-"+tc.devName+".csv")
		if err := writeTrace(wantPath, "csv", "", want); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes, err := os.ReadFile(wantPath)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantBytes) {
			t.Fatalf("-stream -device %s output diverges from sequential reconstruction", tc.devName)
		}
	}
}

// TestRunStreamRejectsStdin checks -stream demands file input/output
// and an engine method.
func TestRunStreamRejectsStdin(t *testing.T) {
	if err := runStream("", "csv", "out.csv", "csv", "", "tracetracker", "new", 1, 0, false); err == nil {
		t.Fatal("-stream without -in accepted")
	}
	if err := runStream("x.csv", "csv", "", "csv", "", "tracetracker", "new", 1, 0, false); err == nil {
		t.Fatal("-stream without -out accepted")
	}
	if err := runStream("x.csv", "csv", "out.csv", "csv", "", "revision", "new", 1, 0, false); err == nil {
		t.Fatal("-stream with baseline method accepted")
	}
	if err := runStream("x.csv", "csv", "out.csv", "csv", "", "tracetracker", "floppy", 1, 0, false); err == nil {
		t.Fatal("-stream with unknown device accepted")
	}
}
