package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
)

func sample() *trace.Trace {
	return &trace.Trace{
		Name: "cli", Workload: "w", Set: "FIU",
		Requests: []trace.Request{
			{Arrival: 0, LBA: 100, Sectors: 8, Op: trace.Read, Latency: 100 * time.Microsecond},
			{Arrival: time.Millisecond, LBA: 200, Sectors: 16, Op: trace.Write, Latency: 300 * time.Microsecond},
		},
	}
}

func TestReadWriteTraceFormats(t *testing.T) {
	dir := t.TempDir()
	orig := sample()
	for _, format := range []string{"csv", "bin"} {
		path := filepath.Join(dir, "t."+format)
		if err := writeTrace(path, format, "", orig); err != nil {
			t.Fatalf("%s: write: %v", format, err)
		}
		got, err := readTrace(path, format)
		if err != nil {
			t.Fatalf("%s: read: %v", format, err)
		}
		if !reflect.DeepEqual(got.Requests, orig.Requests) {
			t.Fatalf("%s: round trip lost data", format)
		}
	}
}

func TestWriteTraceBlktrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.blk")
	if err := writeTrace(path, "blktrace", "", sample()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty blktrace output")
	}
}

func TestWriteTraceFIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.fio")
	// The job file goes to stderr; silence it for the test.
	old := os.Stderr
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stderr = null
	err := writeTrace(path, "fio", "/dev/test", sample())
	os.Stderr = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("empty fio output")
	}
}

func TestUnknownFormats(t *testing.T) {
	if _, err := readTrace("", "nope"); err == nil {
		t.Fatal("unknown input format accepted")
	}
	if err := writeTrace(filepath.Join(t.TempDir(), "x"), "nope", "", sample()); err == nil {
		t.Fatal("unknown output format accepted")
	}
}

func TestReadTraceMissingFile(t *testing.T) {
	if _, err := readTrace("/nonexistent/path.csv", "csv"); err == nil {
		t.Fatal("missing file accepted")
	}
}
