// Command tracetracker reconstructs an old block trace for a modern
// storage target: the full co-evaluation pipeline (inference →
// hardware emulation → post-processing), or any of the four baseline
// methods for comparison.
//
// Usage:
//
//	tracetracker -in old.csv -out new.csv
//	tracetracker -in old.csv -method revision -out rev.csv
//	tracetracker -in old.bin -informat bin -report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace path (default stdin)")
	informat := flag.String("informat", "csv", `input format: "csv", "bin", "msrc", "spc"`)
	out := flag.String("out", "", "output trace path (default stdout)")
	outformat := flag.String("outformat", "csv", `output format: "csv", "bin", "blktrace", or "fio"`)
	fioDevice := flag.String("fio-device", "/dev/nvme0n1", "target device path for fio output")
	method := flag.String("method", "tracetracker",
		`reconstruction method: "tracetracker", "dynamic", "fixed-th", "revision", "acceleration"`)
	factor := flag.Float64("factor", baseline.DefaultAccelerationFactor, "acceleration factor")
	threshold := flag.Duration("threshold", baseline.DefaultFixedThreshold, "fixed-th idle threshold")
	showReport := flag.Bool("report", false, "print the reconstruction report to stderr")
	flag.Parse()

	old, err := readTrace(*in, *informat)
	if err != nil {
		fatal(err)
	}
	if err := old.Validate(); err != nil {
		fatal(fmt.Errorf("input: %w", err))
	}

	target := device.NewArray(device.DefaultArrayConfig())
	var (
		result *trace.Trace
		rep    *core.Report
	)
	switch *method {
	case "tracetracker":
		result, rep, err = core.Reconstruct(old, target, core.Options{})
	case "dynamic":
		result, rep, err = core.Reconstruct(old, target, core.Options{SkipPostProcess: true})
	case "fixed-th":
		result = baseline.FixedTh(old, target, *threshold)
	case "revision":
		result = baseline.Revision(old, target)
	case "acceleration":
		result = baseline.Acceleration(old, *factor)
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	if err != nil {
		fatal(err)
	}

	if *showReport && rep != nil {
		t := &report.Table{Title: "reconstruction report", Headers: []string{"metric", "value"}}
		t.AddRow("requests", old.Len())
		t.AddRow("idle instructions", rep.IdleCount)
		t.AddRow("total idle", rep.IdleTotal)
		t.AddRow("async instructions", rep.AsyncCount)
		if rep.Model != nil {
			t.AddRow("beta (us/sector)", rep.Model.BetaMicros)
			t.AddRow("eta (us/sector)", rep.Model.EtaMicros)
			t.AddRow("Tcdel read", time.Duration(rep.Model.TcdelReadMicros*float64(time.Microsecond)))
			t.AddRow("Tcdel write", time.Duration(rep.Model.TcdelWriteMicros*float64(time.Microsecond)))
			t.AddRow("Tmovd", time.Duration(rep.Model.TmovdMicros*float64(time.Microsecond)))
		}
		t.AddRow("old duration", old.Duration())
		t.AddRow("new duration", result.Duration())
		t.Render(os.Stderr)
	}

	if err := writeTrace(*out, *outformat, *fioDevice, result); err != nil {
		fatal(err)
	}
}

func readTrace(path, format string) (*trace.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	switch format {
	case "csv":
		return trace.ReadCSV(r)
	case "bin":
		return trace.ReadBinary(r)
	case "msrc":
		return trace.ReadMSRC(r)
	case "spc":
		return trace.ReadSPC(r)
	default:
		return nil, fmt.Errorf("unknown input format %q", format)
	}
}

func writeTrace(path, format, fioDevice string, t *trace.Trace) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "csv":
		return trace.WriteCSV(w, t)
	case "bin":
		return trace.WriteBinary(w, t)
	case "blktrace":
		return trace.WriteBlktrace(w, t)
	case "fio":
		// Emit the iolog; the matching job file goes to stderr as a
		// convenience so a single pipeline produces both.
		if err := trace.WriteFIOLog(w, t, fioDevice); err != nil {
			return err
		}
		return trace.WriteFIOJob(os.Stderr, t, path, fioDevice)
	default:
		return fmt.Errorf("unknown output format %q", format)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracetracker: %v\n", err)
	os.Exit(1)
}
