// Command tracetracker reconstructs an old block trace for a modern
// storage target: the full co-evaluation pipeline (inference →
// hardware emulation → post-processing), or any of the four baseline
// methods for comparison.
//
// The tracetracker and dynamic methods run on the sharded parallel
// engine (internal/engine): the trace is cut into epochs at idle-period
// boundaries and reconstructed on -parallel workers (default
// GOMAXPROCS), with output byte-identical to the sequential pipeline.
// -device selects the target: the flash array (default) runs
// shard-parallel, while the HDD target runs on the engine's
// epoch-pipelined snapshot/handoff path — also at the full -parallel
// worker count, no serial fallback. -stream additionally bounds memory
// by streaming the input through the engine instead of materializing
// it (requires -in and -out; the output is written atomically and the
// fio job file is not emitted in this mode).
//
// Usage:
//
//	tracetracker -in old.csv -out new.csv
//	tracetracker -in old.csv -parallel 8 -out new.csv
//	tracetracker -in old.csv -device hdd -parallel 8 -out oldnode.csv
//	tracetracker -in old.bin -informat bin -stream -out new.bin -outformat bin
//	tracetracker -in old.csv -method revision -out rev.csv
//	tracetracker -in old.bin -informat bin -report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/infer"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace path (default stdin)")
	informat := flag.String("informat", "csv", `input format: "csv", "bin", "msrc", "spc", or "auto" (content sniffing)`)
	out := flag.String("out", "", "output trace path (default stdout)")
	outformat := flag.String("outformat", "csv", `output format: "csv", "bin", "blktrace", or "fio"`)
	fioDevice := flag.String("fio-device", "/dev/nvme0n1", "target device path for fio output")
	method := flag.String("method", "tracetracker",
		`reconstruction method: "tracetracker", "dynamic", "fixed-th", "revision", "acceleration"`)
	devName := flag.String("device", "new",
		`reconstruction target: "new"/"array" (the paper's flash array), "ssd", "old"/"hdd", "ftl" (page-mapped flash translation layer with GC), or "host"/"hoststack" (page cache + write-back over an HDD); hdd/ftl/host run on the epoch-pipelined engine path at full -parallel`)
	factor := flag.Float64("factor", baseline.DefaultAccelerationFactor, "acceleration factor")
	threshold := flag.Duration("threshold", baseline.DefaultFixedThreshold, "fixed-th idle threshold")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"engine workers for the tracetracker/dynamic methods (output stays byte-identical)")
	stream := flag.Bool("stream", false,
		"stream the reconstruction with bounded memory (requires -in and -out; tracetracker/dynamic only)")
	reorderWindow := flag.Int("reorder-window", 0,
		"streaming arrival-sort window for near-sorted corpora (0 = auto per format)")
	showReport := flag.Bool("report", false, "print the reconstruction report to stderr")
	flag.Parse()

	mkDevice, err := engine.DeviceFactory(*devName)
	if err != nil {
		fatal(err)
	}

	if *stream {
		if err := runStream(*in, *informat, *out, *outformat, *fioDevice, *method, *devName, *parallel, *reorderWindow, *showReport); err != nil {
			fatal(err)
		}
		return
	}

	old, err := readTrace(*in, *informat)
	if err != nil {
		fatal(err)
	}
	if err := old.Validate(); err != nil {
		fatal(fmt.Errorf("input: %w", err))
	}

	var (
		result *trace.Trace
		rep    *core.Report
	)
	switch *method {
	case "tracetracker", "dynamic":
		eng := engine.New(engine.Config{
			Workers: *parallel,
			Core:    core.Options{SkipPostProcess: *method == "dynamic"},
			Device:  mkDevice,
		})
		result, rep, err = eng.Reconstruct(old)
	case "fixed-th":
		result = baseline.FixedTh(old, mkDevice(), *threshold)
	case "revision":
		result = baseline.Revision(old, mkDevice())
	case "acceleration":
		result = baseline.Acceleration(old, *factor)
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	if err != nil {
		fatal(err)
	}

	if *showReport && rep != nil {
		t := &report.Table{Title: "reconstruction report", Headers: []string{"metric", "value"}}
		t.AddRow("requests", old.Len())
		t.AddRow("idle instructions", rep.IdleCount)
		t.AddRow("total idle", rep.IdleTotal)
		t.AddRow("async instructions", rep.AsyncCount)
		addModelRows(t, rep.Model)
		t.AddRow("old duration", old.Duration())
		t.AddRow("new duration", result.Duration())
		t.Render(os.Stderr)
	}

	if err := writeTrace(*out, *outformat, *fioDevice, result); err != nil {
		fatal(err)
	}
}

// runStream drives the bounded-memory engine path by delegating to
// the same engine.RunJob the daemon executes (two passes over the
// input file: model fit, then sharded reconstruction; the output is
// written atomically).
func runStream(in, informat, out, outformat, fioDevice, method, devName string, parallel, reorderWindow int, showReport bool) error {
	if in == "" {
		return fmt.Errorf("-stream needs -in (the model-fit pass re-reads the input)")
	}
	if out == "" {
		return fmt.Errorf("-stream needs -out (the output is written atomically via a temp file)")
	}
	if informat == "auto" {
		// Job specs carry a concrete format (the engine re-opens the
		// input for its two passes), so resolve the sniff here.
		detected, err := trace.DetectFile(in)
		if err != nil {
			return err
		}
		informat = detected
	}
	res, err := engine.RunJob(engine.Config{}, engine.JobSpec{
		In:            in,
		InFormat:      informat,
		Out:           out,
		OutFormat:     outformat,
		FIODevice:     fioDevice,
		Method:        method,
		Device:        devName,
		Parallel:      parallel,
		Stream:        true,
		ReorderWindow: reorderWindow,
	})
	if err != nil {
		return err
	}
	rep := res.Report
	if showReport {
		t := &report.Table{Title: "streaming reconstruction report", Headers: []string{"metric", "value"}}
		t.AddRow("requests", rep.Requests)
		t.AddRow("shards", rep.Shards)
		t.AddRow("workers", rep.Workers)
		t.AddRow("idle instructions", rep.IdleCount)
		t.AddRow("total idle", rep.IdleTotal)
		t.AddRow("async instructions", rep.AsyncCount)
		addModelRows(t, rep.Model)
		t.Render(os.Stderr)
	}
	return nil
}

// addModelRows appends the fitted model's parameters to a report
// table (no-op on the recorded-latency path), so the streaming and
// in-memory reports cannot drift.
func addModelRows(t *report.Table, m *infer.Model) {
	if m == nil {
		return
	}
	t.AddRow("beta (us/sector)", m.BetaMicros)
	t.AddRow("eta (us/sector)", m.EtaMicros)
	t.AddRow("Tcdel read", time.Duration(m.TcdelReadMicros*float64(time.Microsecond)))
	t.AddRow("Tcdel write", time.Duration(m.TcdelWriteMicros*float64(time.Microsecond)))
	t.AddRow("Tmovd", time.Duration(m.TmovdMicros*float64(time.Microsecond)))
}

func readTrace(path, format string) (*trace.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.ReadAuto(format, r)
}

func writeTrace(path, format, fioDevice string, t *trace.Trace) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if format == "fio" {
		// Emit the iolog; the matching job file goes to stderr as a
		// convenience so a single pipeline produces both.
		if err := trace.WriteFIOLog(w, t, fioDevice); err != nil {
			return err
		}
		return trace.WriteFIOJob(os.Stderr, t, path, fioDevice)
	}
	enc, err := trace.NewEncoder(format, w, fioDevice)
	if err != nil {
		return err
	}
	return trace.EncodeTrace(enc, t)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracetracker: %v\n", err)
	os.Exit(1)
}
