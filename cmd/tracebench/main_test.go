package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestRunAndGate drives the CLI end to end at tiny size: run, write
// the report, gate against itself (pass), then gate against a doped
// baseline (fail).
func TestRunAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("cli run is seconds-long")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_cur.json")
	var buf bytes.Buffer
	err := run([]string{"-quick", "-rev", "cur", "-sizes", "2000", "-workers", "1", "-out", out}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "wrote "+out) {
		t.Fatalf("missing write confirmation:\n%s", buf.String())
	}

	// Self-gate passes.
	buf.Reset()
	if err := run([]string{"-compare", out, out}, &buf); err != nil {
		t.Fatalf("self compare: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate: PASS") {
		t.Fatalf("expected PASS:\n%s", buf.String())
	}

	// A baseline claiming 10x the throughput must fail the gate.
	rep, err := bench.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		rep.Results[i].ReqPerSec *= 10
	}
	doped := filepath.Join(dir, "BENCH_doped.json")
	if err := bench.WriteFile(doped, rep); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err = run([]string{"-compare", doped, out}, &buf)
	if err == nil || !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("doped baseline passed the gate: err=%v\n%s", err, buf.String())
	}

	// Disjoint reports are a misconfigured gate, not a pass.
	for i := range rep.Results {
		rep.Results[i].Name = "renamed/" + rep.Results[i].Name
	}
	disjoint := filepath.Join(dir, "BENCH_disjoint.json")
	if err := bench.WriteFile(disjoint, rep); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", disjoint, out}, &buf); err == nil {
		t.Fatal("disjoint reports passed the gate")
	}
}

// TestBadFlags covers argument validation.
func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-compare", "one.json"}, &buf); err == nil {
		t.Fatal("-compare with one arg accepted")
	}
	if err := run([]string{"-sizes", "abc"}, &buf); err == nil {
		t.Fatal("bad -sizes accepted")
	}
	if err := run([]string{"-compare", filepath.Join(t.TempDir(), "missing.json"), "x"}, &buf); !os.IsNotExist(errUnwrapAll(err)) {
		t.Fatalf("missing baseline: %v", err)
	}
}

func errUnwrapAll(err error) error {
	type unwrapper interface{ Unwrap() error }
	for {
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		err = u.Unwrap()
	}
}
