// Command tracebench runs the reproducible performance suite
// (internal/bench) and emits a schema-versioned BENCH_<rev>.json:
// decode-only, encode-only, in-memory reconstruction and streaming
// end-to-end throughput on fixed-seed traces at several sizes and
// worker counts, with amortized allocs/request and peak RSS. The
// repo's perf trajectory commits these files per revision, and the CI
// bench-regression job gates pull requests with -baseline.
//
// Usage:
//
//	tracebench -quick -rev $(git rev-parse --short HEAD)   # CI-sized run
//	tracebench -out BENCH_abc1234.json                     # full run
//	tracebench -quick -baseline BENCH_baseline.json        # run + gate
//	tracebench -compare BENCH_baseline.json BENCH_new.json # gate two files
//	tracebench -quick -daemon http://localhost:8080        # + daemon round trip
//	tracebench -quick -stages                              # + engine stage breakdown
//	tracebench -quick -repeat 5                            # median of 5 runs
//	tracebench -quick -trace traces/                       # + Perfetto timelines
//
// The gate fails (exit 1) on a >15% req/s drop or any allocs/request
// increase beyond counter noise in a scenario both reports share; it
// also fails when the reports share no scenarios, which means the
// gate is misconfigured rather than passing vacuously.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracebench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "CI-sized run (smaller trace sizes)")
	out := fs.String("out", "", "output path (default BENCH_<rev>.json)")
	rev := fs.String("rev", "", "revision label (default: build VCS revision, then \"dev\")")
	sizes := fs.String("sizes", "", "comma-separated request counts (overrides defaults)")
	workers := fs.String("workers", "", "comma-separated worker counts (overrides defaults)")
	baseline := fs.String("baseline", "", "gate this run against a baseline BENCH_*.json")
	compare := fs.Bool("compare", false, "compare two existing reports: -compare BASE CURRENT (no run)")
	daemon := fs.String("daemon", "", "also time a job round trip against a running tracetrackerd URL")
	load := fs.Bool("load", false,
		"load-generation mode against the -daemon URL (skips the bench suite): N tenant clients mix uploads and job submissions with jittered exponential backoff honoring Retry-After, reporting accepted/shed/error rates and accepted-request p99")
	loadTenants := fs.Int("load-tenants", 8, "concurrent tenant client loops in -load mode")
	loadDuration := fs.Duration("load-duration", 10*time.Second, "how long -load mode submits traffic")
	loadKeys := fs.String("load-keys", "", "comma-separated API keys for -load mode, assigned to tenants round-robin (empty = anonymous)")
	loadSize := fs.Int("load-trace-requests", 20_000, "requests in each -load tenant's uploaded trace")
	tolDrop := fs.Float64("tolerance", 0.15, "allowed fractional req/s drop before the gate fails")
	stages := fs.Bool("stages", false,
		"record each engine scenario's per-stage wall-time breakdown (plan/decompose/service/emulate/merge) in the report")
	repeat := fs.Int("repeat", 1,
		"run the whole suite N times and report each scenario's median run by req/s (noise suppression)")
	traceDir := fs.String("trace", "",
		"directory (created if missing) for one Chrome trace-event timeline per engine scenario op, viewable in Perfetto; captured outside the timed runs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tol := bench.DefaultTolerance()
	tol.MaxThroughputDrop = *tolDrop

	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two report paths")
		}
		base, err := bench.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		cur, err := bench.ReadFile(fs.Arg(1))
		if err != nil {
			return err
		}
		return gate(stdout, base, cur, tol)
	}

	if *load {
		if *daemon == "" {
			return fmt.Errorf("-load needs -daemon <url>")
		}
		var keys []string
		if *loadKeys != "" {
			keys = strings.Split(*loadKeys, ",")
		}
		rep, err := bench.RunLoad(bench.LoadOptions{
			BaseURL:       strings.TrimSuffix(*daemon, "/"),
			Tenants:       *loadTenants,
			Keys:          keys,
			Duration:      *loadDuration,
			TraceRequests: *loadSize,
			Log:           func(line string) { fmt.Fprintln(stdout, line) },
		})
		if err != nil {
			return err
		}
		if *out != "" {
			data, _ := json.MarshalIndent(rep, "", "  ")
			if err := os.WriteFile(*out, append(data, '\n'), 0o666); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *out)
		}
		// Shed traffic is the daemon doing its job; server errors and
		// lost jobs are not.
		if rep.ServerErrors > 0 || rep.JobsCompleted+rep.JobsFailed != rep.JobsAccepted {
			return fmt.Errorf("load: %d server errors, %d/%d accepted jobs terminal",
				rep.ServerErrors, rep.JobsCompleted+rep.JobsFailed, rep.JobsAccepted)
		}
		return nil
	}

	opts := bench.Options{
		Quick:    *quick,
		Revision: *rev,
		Stages:   *stages,
		TraceDir: *traceDir,
		Log:      func(line string) { fmt.Fprintln(stdout, line) },
	}
	if opts.TraceDir != "" {
		if err := os.MkdirAll(opts.TraceDir, 0o777); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	if opts.Revision == "" {
		opts.Revision = vcsRevision()
	}
	var err error
	if opts.Sizes, err = parseInts(*sizes); err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	if opts.Workers, err = parseInts(*workers); err != nil {
		return fmt.Errorf("-workers: %w", err)
	}

	if *repeat < 1 {
		return fmt.Errorf("-repeat: must be >= 1, got %d", *repeat)
	}
	runs := make([]*bench.Report, 0, *repeat)
	for i := 0; i < *repeat; i++ {
		if *repeat > 1 {
			fmt.Fprintf(stdout, "--- run %d/%d ---\n", i+1, *repeat)
		}
		ro := opts
		if i > 0 {
			// One timeline per scenario is enough; later repeats would
			// only overwrite the first run's files.
			ro.TraceDir = ""
		}
		r, err := bench.Run(ro)
		if err != nil {
			return err
		}
		runs = append(runs, r)
	}
	rep := bench.MedianReport(runs)
	if *repeat > 1 {
		fmt.Fprintf(stdout, "median of %d runs per scenario (by req/s)\n", *repeat)
	}
	if *daemon != "" {
		res, err := daemonRoundTrip(*daemon, *quick)
		if err != nil {
			return fmt.Errorf("daemon scenario: %w", err)
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(stdout, "%-44s %10.0f req/s\n", res.Name, res.ReqPerSec)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Revision)
	}
	if err := bench.WriteFile(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d scenarios, rev %s, peak RSS %.0f MB)\n",
		path, len(rep.Results), rep.Revision, float64(rep.PeakRSSBytes)/1e6)

	if *baseline != "" {
		base, err := bench.ReadFile(*baseline)
		if err != nil {
			return err
		}
		return gate(stdout, base, rep, tol)
	}
	return nil
}

// gate prints the comparison outcome and returns an error on any
// regression (or on a vacuous comparison).
func gate(stdout io.Writer, base, cur *bench.Report, tol bench.Tolerance) error {
	regs, compared := bench.Compare(base, cur, tol)
	if compared == 0 {
		return fmt.Errorf("baseline (rev %s) and current (rev %s) share no scenarios — gate misconfigured",
			base.Revision, cur.Revision)
	}
	fmt.Fprintf(stdout, "gate: %d scenarios compared against rev %s\n", compared, base.Revision)
	if len(regs) == 0 {
		fmt.Fprintln(stdout, "gate: PASS")
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(stdout, "gate: REGRESSION %s\n", r)
	}
	return fmt.Errorf("%d perf regression(s)", len(regs))
}

// vcsRevision pulls the short commit from build info when the binary
// was built inside the repo, else "dev".
func vcsRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 7 {
				return s.Value[:7]
			}
		}
	}
	return "dev"
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// daemonRoundTrip times the full service path against a live
// tracetrackerd: upload a fixed-seed trace to the corpus, submit a
// reconstruction job for it, poll to completion, and download the
// result. The first iteration pays a real reconstruction; later ones
// hit the daemon's result cache, so the measured steady state is
// submit -> cache hit -> download — deliberately, since that is the
// daemon's hot path for repeated corpus sweeps.
func daemonRoundTrip(baseURL string, quick bool) (bench.Result, error) {
	size := 100_000
	if quick {
		size = 20_000
	}
	tr, err := bench.GenerateTrace(size)
	if err != nil {
		return bench.Result{}, err
	}
	var blob bytes.Buffer
	if err := trace.WriteBinary(&blob, tr); err != nil {
		return bench.Result{}, err
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	// Ingest once; dedup by digest makes repeats cheap.
	resp, err := client.Post(baseURL+"/corpus", "application/octet-stream", bytes.NewReader(blob.Bytes()))
	if err != nil {
		return bench.Result{}, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return bench.Result{}, fmt.Errorf("corpus upload: %s: %s", resp.Status, body)
	}
	var ingest struct {
		Entry struct {
			Digest string `json:"digest"`
		} `json:"entry"`
	}
	if err := json.Unmarshal(body, &ingest); err != nil || ingest.Entry.Digest == "" {
		return bench.Result{}, fmt.Errorf("corpus upload response %q: %v", body, err)
	}

	roundTrip := func() error {
		spec := map[string]any{"in": "corpus:" + ingest.Entry.Digest, "outformat": "bin"}
		specBytes, _ := json.Marshal(spec)
		resp, err := client.Post(baseURL+"/jobs", "application/json", bytes.NewReader(specBytes))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("submit: %s: %s", resp.Status, body)
		}
		var job struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &job); err != nil {
			return fmt.Errorf("submit response %q: %w", body, err)
		}
		for {
			resp, err := client.Get(fmt.Sprintf("%s/jobs/%s", baseURL, job.ID))
			if err != nil {
				return err
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(body, &job); err != nil {
				return fmt.Errorf("status response %q: %w", body, err)
			}
			switch job.State {
			case "done":
				resp, err := client.Get(fmt.Sprintf("%s/jobs/%s/result", baseURL, job.ID))
				if err != nil {
					return err
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode/100 != 2 || n == 0 {
					return fmt.Errorf("result: %s (%d bytes)", resp.Status, n)
				}
				return nil
			case "failed":
				return fmt.Errorf("job %s failed: %s", job.ID, job.Error)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := roundTrip(); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return bench.Result{
		Name:      fmt.Sprintf("daemon/roundtrip/size=%d", size),
		Requests:  int64(tr.Len()),
		NsPerOp:   ns,
		ReqPerSec: float64(tr.Len()) / (ns / 1e9),
	}, nil
}
