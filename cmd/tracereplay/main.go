// Command tracereplay replays a block trace against one of the
// simulated devices and reports the device-side statistics: service
// latencies, queue waits, utilization, and bandwidth. It is the
// substrate equivalent of running fio --read_iolog on the evaluation
// node.
//
// Usage:
//
//	tracereplay -in new.csv -device new
//	tracereplay -in old.csv -device old -mode paced
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace path (default stdin)")
	informat := flag.String("informat", "csv", `input format: "csv", "bin", "msrc", "spc"`)
	devName := flag.String("device", "new", `device: "old" (HDD), "new" (flash array), "ssd" (single SSD), "null"`)
	mode := flag.String("mode", "paced", `replay mode: "paced" (issue at trace arrivals) or "closed" (issue on completion)`)
	flag.Parse()

	tr, err := readTrace(*in, *informat)
	if err != nil {
		fatal(err)
	}
	if err := tr.Validate(); err != nil {
		fatal(fmt.Errorf("input: %w", err))
	}

	var inner device.Device
	switch *devName {
	case "old":
		inner = device.NewHDD(device.DefaultHDDConfig())
	case "new":
		inner = device.NewArray(device.DefaultArrayConfig())
	case "ssd":
		inner = device.NewSSD(device.DefaultSSDConfig())
	case "null":
		inner = &device.Null{}
	default:
		fatal(fmt.Errorf("unknown device %q", *devName))
	}
	dev := device.NewInstrumented(inner)

	start := time.Now()
	switch *mode {
	case "paced":
		// Issue each request at its trace arrival; the device's busy
		// state produces queue waits when the trace outpaces it.
		for _, r := range tr.Requests {
			dev.Submit(r.Arrival, r)
		}
	case "closed":
		now := time.Duration(0)
		for _, r := range tr.Requests {
			res := dev.Submit(now, r)
			now = res.Complete
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	wall := time.Since(start)

	s := dev.Snapshot()
	t := &report.Table{
		Title:   fmt.Sprintf("replay of %s (%d requests) on %s, %s mode", tr.Name, tr.Len(), inner.Name(), *mode),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("reads", s.Reads)
	t.AddRow("writes", s.Writes)
	t.AddRow("read MB", fmt.Sprintf("%.1f", float64(s.ReadBytes)/1e6))
	t.AddRow("write MB", fmt.Sprintf("%.1f", float64(s.WriteBytes)/1e6))
	t.AddRow("mean latency", s.MeanLatency)
	t.AddRow("max latency", s.MaxLatency)
	t.AddRow("mean queue wait", s.MeanQueueWait)
	t.AddRow("utilization", fmt.Sprintf("%.2f", s.Utilization))
	if span := tr.Duration(); span > 0 {
		gbps := float64(s.ReadBytes+s.WriteBytes) / span.Seconds() / 1e9
		t.AddRow("offered bandwidth GB/s", fmt.Sprintf("%.3f", gbps))
	}
	t.AddRow("simulation wall time", wall.Round(time.Millisecond))
	t.Render(os.Stdout)
}

func readTrace(path, format string) (*trace.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	switch format {
	case "csv":
		return trace.ReadCSV(r)
	case "bin":
		return trace.ReadBinary(r)
	case "msrc":
		return trace.ReadMSRC(r)
	case "spc":
		return trace.ReadSPC(r)
	default:
		return nil, fmt.Errorf("unknown input format %q", format)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracereplay: %v\n", err)
	os.Exit(1)
}
