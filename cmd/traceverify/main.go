// Command traceverify runs the paper's Section V-A verification
// methodology against a trace: inject idle periods of known length at
// random instructions, run the inference model, and report the
// TP/FP/FN/TN statistics with Detection and Len metrics.
//
// Usage:
//
//	traceverify -in old.csv
//	traceverify -in old.csv -period 1ms -frac 0.1
//	traceverify -workload ikki -ops 20000     (self-generating)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/infer"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	in := flag.String("in", "", "input trace path (omit to self-generate)")
	informat := flag.String("informat", "csv", `input format: "csv", "bin", "msrc", "spc", or "auto" (content sniffing)`)
	wl := flag.String("workload", "ikki", "workload family for self-generation")
	ops := flag.Int("ops", 20000, "instructions for self-generation")
	period := flag.Duration("period", 0, "single injected idle period (0 = paper's 100us..100ms sweep)")
	frac := flag.Float64("frac", 0.10, "fraction of instructions receiving an injection")
	seed := flag.Int64("seed", 42, "injection placement seed")
	flag.Parse()

	tr, err := loadOrGenerate(*in, *informat, *wl, *ops)
	if err != nil {
		fatal(err)
	}

	periods := []time.Duration{
		100 * time.Microsecond, time.Millisecond,
		10 * time.Millisecond, 100 * time.Millisecond,
	}
	if *period > 0 {
		periods = []time.Duration{*period}
	}

	t := &report.Table{
		Title:   fmt.Sprintf("verification: %s (%d requests, tsdev known: %v)", tr.Name, tr.Len(), tr.TsdevKnown),
		Headers: []string{"period", "TP", "FP", "FN", "TN", "Detect(TP)", "Detect(FP)", "Len(TP) secured", "Len(FP) mean"},
	}
	for i, p := range periods {
		spec := verify.InjectionSpec{Period: p, Frac: *frac, Seed: *seed + int64(i)}
		injected, truth := verify.Inject(tr, spec)
		var est []time.Duration
		if injected.TsdevKnown {
			est, _ = infer.Decompose(nil, injected)
		} else {
			m, err := infer.Estimate(injected, infer.EstimateOptions{})
			if err != nil {
				fatal(err)
			}
			est, _ = infer.Decompose(m, injected)
		}
		met := verify.Evaluate(truth, est)
		t.AddRow(report.FormatDuration(p), met.TP, met.FP, met.FN, met.TN,
			report.Percent(met.DetectionTP()), report.Percent(met.DetectionFP()),
			report.Percent(met.LenTPSecured()), met.LenFPMean())
	}
	t.Render(os.Stdout)
}

func loadOrGenerate(path, format, wl string, ops int) (*trace.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadAuto(format, f)
	}
	p, ok := workload.Lookup(wl)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", wl)
	}
	// Verification bases carry no natural idles so every estimated
	// idle at a non-injected instruction is a true false positive.
	p.IdleFreq = 0
	app := workload.Generate(p, workload.GenOptions{Ops: ops, Seed: 7})
	res := app.Execute(device.NewHDD(device.DefaultHDDConfig()))
	tr := res.Trace
	tr.Name = p.Name + "-verify"
	tr.TsdevKnown = p.TsdevKnown
	if !p.TsdevKnown {
		for i := range tr.Requests {
			tr.Requests[i].Latency = 0
		}
	}
	return tr, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "traceverify: %v\n", err)
	os.Exit(1)
}
