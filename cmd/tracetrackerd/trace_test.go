package main

// Trace end-to-end smoke (run by name, with -race, in CI): boot a
// daemon, run a job with a client traceparent, and check the job's
// span timeline serves as a parseable tree whose root covers the
// job's wall time, in both JSON and Chrome trace-event form — plus
// the flight-recorder lifecycle answers (409 before finish, 410 after
// eviction) and the slow-job log line.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// submitTraced posts a job with a traceparent header and returns the
// accepted job record.
func submitTraced(t *testing.T, ts *httptest.Server, spec engine.JobSpec, traceparent string) *job {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	if echo := resp.Header.Get("Traceparent"); echo != traceparent {
		t.Fatalf("submit response traceparent %q, want the client's %q", echo, traceparent)
	}
	var j job
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatalf("submit response %q: %v", raw, err)
	}
	return &j
}

func getTrace(t *testing.T, ts *httptest.Server, id, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

func TestTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeInput(t, dir)
	srv := dataServer(t, filepath.Join(dir, "data"))
	defer srv.Close()
	srv.slowJob = time.Nanosecond // every job counts as slow
	var logBuf bytes.Buffer
	srv.setLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	raw, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}
	digest := uploadCorpus(t, ts, raw, "csv")

	// The client's distributed-trace position: the job must file under
	// this trace ID, with the client's span as the root's parent.
	clientTC := obs.TraceContext{
		TraceID: "0af7651916cd43dd8448eb211c80319c",
		SpanID:  "b7ad6b7169203331",
	}
	spec := engine.JobSpec{In: corpusScheme + digest, Parallel: 2}
	sub := submitTraced(t, ts, spec, clientTC.Traceparent())
	if sub.TraceID != clientTC.TraceID {
		t.Fatalf("accepted job trace_id %q, want the client's %q", sub.TraceID, clientTC.TraceID)
	}

	done := waitDone(t, ts, sub.ID)
	if done.TraceID != clientTC.TraceID {
		t.Fatalf("finished job trace_id %q, want %q", done.TraceID, clientTC.TraceID)
	}
	if done.TraceURL != "/v1/jobs/"+sub.ID+"/trace" {
		t.Fatalf("trace_url %q", done.TraceURL)
	}

	// The JSON timeline: a span tree rooted at the job, joined to the
	// client's trace, with the fixed stages and nonzero epoch spans.
	resp, body := getTrace(t, ts, sub.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d: %s", resp.StatusCode, body)
	}
	var jt obs.JobTrace
	if err := json.Unmarshal(body, &jt); err != nil {
		t.Fatalf("trace response %q: %v", body, err)
	}
	if jt.TraceID != clientTC.TraceID || jt.ParentSpanID != clientTC.SpanID {
		t.Fatalf("timeline trace identity: id %q parent %q", jt.TraceID, jt.ParentSpanID)
	}
	if len(jt.Spans) == 0 {
		t.Fatal("timeline has no spans")
	}
	root := jt.Spans[0]
	names := map[string]int{}
	var epochDur time.Duration
	for _, s := range jt.Spans {
		names[s.Name]++
		if s.StartNS < root.StartNS || s.EndNS > root.EndNS {
			t.Fatalf("span %s escapes the root: %+v", s.Name, s)
		}
		if s.Name == "epoch" {
			epochDur += s.Duration()
		}
	}
	for _, want := range []string{"decode", "plan", "epoch", "decompose", "emulate", "merge", "cache-lookup", "cache-store"} {
		if names[want] == 0 {
			t.Errorf("timeline missing %q span; spans: %v", want, names)
		}
	}
	if epochDur <= 0 {
		t.Fatal("epoch spans have zero total duration")
	}

	// The root span's duration tracks the job's recorded wall time.
	wall := done.Finished.Sub(*done.Started)
	rootDur := time.Duration(jt.DurationNS)
	if diff := (rootDur - wall).Abs(); diff > 150*time.Millisecond {
		t.Fatalf("root span %v vs job wall %v (diff %v)", rootDur, wall, diff)
	}

	// The Perfetto form: valid Chrome trace-event JSON with one X
	// event per span, served as a download.
	resp, body = getTrace(t, ts, sub.ID, "?format=perfetto")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("perfetto trace: status %d: %s", resp.StatusCode, body)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, ".trace.json") {
		t.Fatalf("perfetto content disposition %q", cd)
	}
	var chrome struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("perfetto export invalid: %v\n%s", err, body)
	}
	xs := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			xs++
		}
	}
	if xs != len(jt.Spans) {
		t.Fatalf("perfetto export has %d X events for %d spans", xs, len(jt.Spans))
	}
	if chrome.OtherData["trace_id"] != clientTC.TraceID {
		t.Fatalf("perfetto otherData: %v", chrome.OtherData)
	}

	if resp, body := getTrace(t, ts, sub.ID, "?format=svg"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := getTrace(t, ts, "job-none", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}

	// An unfinished job has no timeline yet: 409.
	srv.mu.Lock()
	srv.jobs["job-q"] = &job{ID: "job-q", State: stateQueued}
	srv.order = append(srv.order, "job-q")
	srv.mu.Unlock()
	if resp, body := getTrace(t, ts, "job-q", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("queued job trace: status %d: %s", resp.StatusCode, body)
	}

	// The slow-job threshold (1ns here) fired: counter and log line
	// naming the slowest spans.
	if v := srv.slowJobs.Value(); v < 1 {
		t.Fatalf("daemon_slow_jobs_total = %d, want >= 1", v)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "slow job") || !strings.Contains(logs, "slowest_spans=") {
		t.Fatalf("slow-job log line missing:\n%s", logs)
	}

	// Shrinking the flight recorder evicts the oldest timeline; its
	// endpoint then answers 410, and the eviction is counted.
	sub2 := submitTraced(t, ts, engine.JobSpec{In: corpusScheme + digest, Parallel: 1, Method: "dynamic"},
		obs.NewTraceContext().Traceparent())
	waitDone(t, ts, sub2.ID)
	srv.flight.SetCapacity(1)
	if resp, body := getTrace(t, ts, sub.ID, ""); resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted trace: status %d: %s", resp.StatusCode, body)
	}
	if srv.flight.Evictions() < 1 {
		t.Fatal("eviction not counted")
	}
	if resp, _ := getTrace(t, ts, sub2.ID, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("newest trace evicted too: status %d", resp.StatusCode)
	}
}
