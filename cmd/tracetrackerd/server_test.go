package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/workload"
)

// writeInput synthesizes a small Tsdev-known trace file and returns
// its path plus the expected reconstruction.
func writeInput(t *testing.T, dir string) (string, *trace.Trace) {
	t.Helper()
	p, ok := workload.Lookup("ikki")
	if !ok {
		t.Fatal("ikki profile missing")
	}
	app := workload.Generate(p, workload.GenOptions{Ops: 400, Seed: 1})
	old := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
	old.Name = "ikki-web"

	path := filepath.Join(dir, "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, old); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The daemon decodes the CSV, so the expectation must too.
	rt, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	oldRT, err := trace.ReadCSV(rt)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Reconstruct(oldRT, device.NewArray(device.DefaultArrayConfig()), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return path, want
}

// postJob submits a spec and returns the job id.
func postJob(t *testing.T, ts *httptest.Server, spec engine.JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.ID == "" {
		t.Fatal("submit: empty id")
	}
	return ack.ID
}

// waitDone polls the status endpoint until the job finishes.
func waitDone(t *testing.T, ts *httptest.Server, id string) *job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch j.State {
		case stateDone:
			return &j
		case stateFailed:
			t.Fatalf("job failed: %s", j.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return nil
}

// TestSubmitStatusResultRoundTrip is the acceptance scenario: submit a
// job, poll status, fetch the result, and check it equals the
// sequential pipeline's reconstruction.
func TestSubmitStatusResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inPath, want := writeInput(t, dir)
	srv := newServer(engine.Config{Workers: 4, MinShardRequests: 32, MaxShardRequests: 128, MinIdleGap: 500 * time.Microsecond}, 1, 0)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id := postJob(t, ts, engine.JobSpec{In: inPath, Parallel: 4})
	j := waitDone(t, ts, id)
	if j.Report == nil || j.Report.Requests != int64(want.Len()) {
		t.Fatalf("report: %+v", j.Report)
	}
	if j.ResultURL == "" {
		t.Fatal("no result url")
	}

	resp, err := http.Get(ts.URL + j.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	// Compare served bytes directly: the CSV text form is the identity
	// to preserve (a decode/re-encode cycle would truncate µs text).
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := trace.WriteCSV(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBuf.Bytes()) {
		t.Fatal("served result diverges from sequential reconstruction")
	}
}

// TestStreamingJobToFile runs a streaming job writing to a file and
// fetches the result from disk via the result endpoint.
func TestStreamingJobToFile(t *testing.T) {
	dir := t.TempDir()
	inPath, want := writeInput(t, dir)
	outPath := filepath.Join(dir, "out.csv")
	srv := newServer(engine.Config{Workers: 2, MinShardRequests: 32, MaxShardRequests: 128, MinIdleGap: 500 * time.Microsecond}, 1, 0)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id := postJob(t, ts, engine.JobSpec{In: inPath, Out: outPath, Stream: true})
	j := waitDone(t, ts, id)
	if j.OutPath != outPath {
		t.Fatalf("out path: %q", j.OutPath)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := trace.WriteCSV(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantBuf.Bytes()) {
		t.Fatal("streaming job output diverges from sequential reconstruction")
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result from file: status %d", resp.StatusCode)
	}
}

// TestJobValidationAndErrors covers the API's failure surface.
func TestJobValidationAndErrors(t *testing.T) {
	srv := newServer(engine.Config{}, 1, 0)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Invalid spec.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"method":"nope","in":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method: status %d", resp.StatusCode)
	}
	// Unknown job.
	resp, err = http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
	// Missing input file -> job fails asynchronously.
	id := postJob(t, ts, engine.JobSpec{In: "/nonexistent/trace.csv"})
	deadline := time.Now().Add(10 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j job
		json.NewDecoder(r2.Body).Decode(&j)
		r2.Body.Close()
		if j.State == stateFailed {
			break
		}
		if j.State == stateDone {
			t.Fatal("job with missing input succeeded")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never failed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Result of a failed job.
	resp, err = http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed-job result: status %d", resp.StatusCode)
	}
	// Health.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["ok"] != true {
		t.Fatalf("health: %+v", health)
	}
}

// TestInMemoryFIOResultCarriesDevice checks that a fio-format job
// without an output path serves an iolog embedding the defaulted
// replay device (the spec is normalized at submit).
func TestInMemoryFIOResultCarriesDevice(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeInput(t, dir)
	srv := newServer(engine.Config{Workers: 1}, 1, 0)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id := postJob(t, ts, engine.JobSpec{In: inPath, OutFormat: "fio"})
	waitDone(t, ts, id)
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "/dev/nvme0n1 open") {
		t.Fatalf("iolog missing defaulted device path:\n%s", string(body[:min(len(body), 200)]))
	}
}

// TestResultEviction checks the retention bound: with retain=1, the
// older in-memory result is evicted (410 Gone) while the newest stays
// servable and metadata survives.
func TestResultEviction(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeInput(t, dir)
	srv := newServer(engine.Config{Workers: 1}, 1, 1)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id1 := postJob(t, ts, engine.JobSpec{In: inPath})
	waitDone(t, ts, id1)
	id2 := postJob(t, ts, engine.JobSpec{In: inPath})
	waitDone(t, ts, id2)

	resp, err := http.Get(ts.URL + "/jobs/" + id1 + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted result: status %d, want 410", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/jobs/" + id2 + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retained result: status %d", resp.StatusCode)
	}
	// Metadata for the evicted job is still listed.
	resp, err = http.Get(ts.URL + "/jobs/" + id1)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted job status: %d", resp.StatusCode)
	}
}

// TestJobList checks listing order (most recent first) and that the
// legacy alias serves the same paginated shape as /v1/jobs.
func TestJobList(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeInput(t, dir)
	srv := newServer(engine.Config{Workers: 1}, 1, 0)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id1 := postJob(t, ts, engine.JobSpec{In: inPath, Name: "first"})
	id2 := postJob(t, ts, engine.JobSpec{In: inPath, Name: "second"})
	waitDone(t, ts, id1)
	waitDone(t, ts, id2)

	for _, path := range []string{"/v1/jobs", "/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var page jobPage
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		jobs := page.Jobs
		if len(jobs) != 2 || jobs[0].Name != "second" || jobs[1].Name != "first" {
			t.Fatalf("%s: list: %+v", path, jobs)
		}
		if jobs[0].ID != id2 {
			t.Fatalf("%s: want %s first, got %s", path, id2, jobs[0].ID)
		}
		if page.NextAfter != "" {
			t.Fatalf("%s: two jobs fit one page, next_after = %q", path, page.NextAfter)
		}
	}
}
