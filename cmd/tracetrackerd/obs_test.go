package main

// Observability surface tests: the /healthz JSON shape (a regression
// lock on the original fields plus the uptime/revision additions), and
// the /metrics end-to-end smoke CI runs by name — boot a daemon with a
// data directory, ingest a trace, run a job twice (the second from the
// result cache), and check the exposition parses and carries nonzero
// engine, daemon and corpus series.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
)

// TestHealthzShape locks the /healthz response contract: every field
// the original endpoint served must stay present with the same JSON
// type, so dashboards and scripts keyed on them survive the migration
// onto the metrics registry.
func TestHealthzShape(t *testing.T) {
	srv := dataServer(t, filepath.Join(t.TempDir(), "data"))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("healthz response missing X-Request-ID")
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	// The original field set (all JSON numbers except ok), unchanged.
	if ok, is := health["ok"].(bool); !is || !ok {
		t.Fatalf("ok = %v", health["ok"])
	}
	for _, field := range []string{"jobs", "queued", "running", "executed", "cache_hits", "corpus"} {
		if _, is := health[field].(float64); !is {
			t.Errorf("field %q missing or not a number: %v", field, health[field])
		}
	}
	// The additions.
	if up, is := health["uptime_seconds"].(float64); !is || up < 0 {
		t.Errorf("uptime_seconds = %v", health["uptime_seconds"])
	}
	if rev, is := health["revision"].(string); !is || rev == "" {
		t.Errorf("revision = %v", health["revision"])
	}
}

// metricValue finds one sample by name and (subset) label match.
func metricValue(t *testing.T, samples []obs.Sample, name string, labels map[string]string) (float64, bool) {
	t.Helper()
next:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}

// TestMetricsEndToEnd is the CI metrics smoke (run by name in the
// workflow): after one executed job and one cache hit, /metrics must
// serve parseable Prometheus text with nonzero engine stage timings,
// queue-depth series, and cache/jobs/corpus counters.
func TestMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeInput(t, dir)
	srv := dataServer(t, filepath.Join(dir, "data"))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	raw, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}
	digest := uploadCorpus(t, ts, raw, "csv")

	spec := engine.JobSpec{In: corpusScheme + digest, Parallel: 2}
	first := waitDone(t, ts, postJob(t, ts, spec))
	if first.Cached {
		t.Fatal("first job reported cached")
	}
	second := waitDone(t, ts, postJob(t, ts, spec))
	if !second.Cached {
		t.Fatal("identical resubmission did not hit the result cache")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}

	// Engine: the executed job must have left nonzero stage timings and
	// settled queues.
	for _, stage := range []string{"plan", "decompose", "emulate", "merge"} {
		v, ok := metricValue(t, samples, "engine_stage_seconds_total", map[string]string{"stage": stage})
		if !ok || v <= 0 {
			t.Errorf("engine_stage_seconds_total{stage=%q} = %v (found %v), want > 0", stage, v, ok)
		}
	}
	for _, stage := range []string{"decompose", "service", "emulate", "merge"} {
		v, ok := metricValue(t, samples, "engine_stage_queue_depth", map[string]string{"stage": stage})
		if !ok || v != 0 {
			t.Errorf("engine_stage_queue_depth{stage=%q} = %v (found %v), want 0 at idle", stage, v, ok)
		}
	}
	if v, ok := metricValue(t, samples, "engine_requests_total", nil); !ok || v <= 0 {
		t.Errorf("engine_requests_total = %v (found %v), want > 0", v, ok)
	}
	if v, ok := metricValue(t, samples, "engine_cache_hits_total", nil); !ok || v < 1 {
		t.Errorf("engine_cache_hits_total = %v (found %v), want >= 1", v, ok)
	}
	if v, ok := metricValue(t, samples, "engine_cache_misses_total", nil); !ok || v < 1 {
		t.Errorf("engine_cache_misses_total = %v (found %v), want >= 1", v, ok)
	}

	// Daemon: one executed, one cached, an empty queue, and the HTTP
	// series this scrape's own requests created.
	for want, labels := range map[string]map[string]string{
		"daemon_jobs_total-executed": {"outcome": "executed"},
		"daemon_jobs_total-cached":   {"outcome": "cached"},
	} {
		name := strings.SplitN(want, "-", 2)[0]
		if v, ok := metricValue(t, samples, name, labels); !ok || v != 1 {
			t.Errorf("%s%v = %v (found %v), want 1", name, labels, v, ok)
		}
	}
	if v, ok := metricValue(t, samples, "daemon_queue_depth", nil); !ok || v != 0 {
		t.Errorf("daemon_queue_depth = %v (found %v), want 0", v, ok)
	}
	if v, ok := metricValue(t, samples, "daemon_requests_total",
		map[string]string{"route": "POST /jobs", "code": "202"}); !ok || v != 2 {
		t.Errorf("daemon_requests_total{POST /jobs,202} = %v (found %v), want 2", v, ok)
	}
	if v, ok := metricValue(t, samples, "daemon_uptime_seconds", nil); !ok || v < 0 {
		t.Errorf("daemon_uptime_seconds = %v (found %v)", v, ok)
	}

	// Corpus: one upload landed, its bytes and records counted.
	if v, ok := metricValue(t, samples, "corpus_ingest_traces_total", nil); !ok || v != 1 {
		t.Errorf("corpus_ingest_traces_total = %v (found %v), want 1", v, ok)
	}
	if v, ok := metricValue(t, samples, "corpus_ingest_bytes_total", nil); !ok || v != float64(len(raw)) {
		t.Errorf("corpus_ingest_bytes_total = %v (found %v), want %d", v, ok, len(raw))
	}
	if v, ok := metricValue(t, samples, "corpus_result_cache_stores_total", nil); !ok || v != 1 {
		t.Errorf("corpus_result_cache_stores_total = %v (found %v), want 1", v, ok)
	}
	if v, ok := metricValue(t, samples, "corpus_traces", nil); !ok || v != 1 {
		t.Errorf("corpus_traces = %v (found %v), want 1", v, ok)
	}
}
