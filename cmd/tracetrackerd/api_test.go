package main

// v1 API contract tests: the route table mounts everything under /v1
// with working legacy aliases, every non-2xx response carries the
// structured error envelope with its stable code, the device
// catalogue matches validation, and job listing paginates with a
// cursor that stays stable while new jobs arrive.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// errEnvelope decodes a response body as the error envelope, failing
// the test if the shape is wrong.
func errEnvelope(t *testing.T, body []byte) apiError {
	t.Helper()
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("response is not an error envelope: %v\n%s", err, body)
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	return e.Error
}

// doReq issues method+path with an optional body and returns status
// and body bytes.
func doReq(t *testing.T, ts *httptest.Server, method, path, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// fillRoute substitutes concrete (unknown) values for path wildcards.
func fillRoute(path string) string {
	path = strings.ReplaceAll(path, "{id}", "job-999999")
	path = strings.ReplaceAll(path, "{digest}", "ffffffffffff")
	return path
}

// TestRouteContract is the CI route smoke (run by name, race-checked
// in the workflow): it walks the daemon's own route table, so a route
// cannot be added without being covered here. Every v1 route and
// every legacy alias must be mounted (never falling through to the
// catch-all 404), answer JSON, and on failure answer the structured
// envelope; each legacy hit must count in daemon_legacy_requests_total.
func TestRouteContract(t *testing.T) {
	srv := dataServer(t, filepath.Join(t.TempDir(), "data"))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	check := func(method, path string) {
		t.Helper()
		status, body := doReq(t, ts, method, path, "")
		if status == http.StatusOK || status == http.StatusAccepted || status == http.StatusCreated {
			return
		}
		env := errEnvelope(t, body)
		if env.Code == "not_found" || env.Code == "method_not_allowed" {
			t.Fatalf("%s %s fell through to the fallback handler: %s %s", method, path, env.Code, env.Message)
		}
	}
	legacyHits := 0
	for _, rt := range srv.routes() {
		check(rt.method, "/v1"+fillRoute(rt.path))
		if rt.legacy {
			check(rt.method, fillRoute(rt.path))
			legacyHits++
		}
	}
	// Root-level operational endpoints.
	for _, path := range []string{"/healthz", "/metrics"} {
		if status, body := doReq(t, ts, http.MethodGet, path, ""); status != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, status, body)
		}
	}

	// Wrong method on a known path: enveloped 405, not the mux default.
	status, body := doReq(t, ts, http.MethodDelete, "/v1/jobs", "")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/jobs: status %d, want 405", status)
	}
	if env := errEnvelope(t, body); env.Code != "method_not_allowed" {
		t.Fatalf("405 envelope code %q", env.Code)
	}
	// Unknown path: enveloped 404.
	status, body = doReq(t, ts, http.MethodGet, "/v2/jobs", "")
	if status != http.StatusNotFound {
		t.Fatalf("GET /v2/jobs: status %d, want 404", status)
	}
	if env := errEnvelope(t, body); env.Code != "not_found" {
		t.Fatalf("404 envelope code %q", env.Code)
	}
	// /v1/devices is v1-only: no unversioned alias.
	if status, body = doReq(t, ts, http.MethodGet, "/devices", ""); status != http.StatusNotFound {
		t.Fatalf("GET /devices: status %d: %s (the catalogue is v1-only)", status, body)
	}

	// Every legacy request above landed in the alias counter.
	_, metrics := doReq(t, ts, http.MethodGet, "/metrics", "")
	samples, err := obs.ParseExposition(metrics)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range samples {
		if s.Name == "daemon_legacy_requests_total" {
			total += s.Value
		}
	}
	if total != float64(legacyHits) {
		t.Fatalf("daemon_legacy_requests_total = %v, want %d (one per alias hit)", total, legacyHits)
	}
}

// TestErrorEnvelopes is the table-driven lock on the failure surface:
// each error path answers its documented status and stable code, and
// validation messages name the offending field.
func TestErrorEnvelopes(t *testing.T) {
	srv := dataServer(t, filepath.Join(t.TempDir(), "data"))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A failed job (missing input) exercises the not-finished paths.
	failedID := postJob(t, ts, engine.JobSpec{In: "/nonexistent/trace.csv"})
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := doReq(t, ts, http.MethodGet, "/v1/jobs/"+failedID, "")
		var j job
		json.Unmarshal(body, &j)
		if j.State == stateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fixture job never failed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cases := []struct {
		name    string
		method  string
		path    string
		body    string
		status  int
		code    string
		mention string // substring the message must contain ("" = any)
	}{
		{"bad json", "POST", "/v1/jobs", "{not json", 400, "bad_json", ""},
		{"missing input", "POST", "/v1/jobs", `{}`, 400, "missing_input", "in"},
		{"unknown method", "POST", "/v1/jobs", `{"in":"x","method":"nope"}`, 400, "unknown_method", "nope"},
		{"unknown device", "POST", "/v1/jobs", `{"in":"x","device":"floppy"}`, 400, "unknown_device", "floppy"},
		{"unknown format", "POST", "/v1/jobs", `{"in":"x","informat":"xml"}`, 400, "unknown_format", "xml"},
		{"config mismatch", "POST", "/v1/jobs", `{"in":"x","device":"array","ftl_config":{"blocks":128}}`, 400, "config_mismatch", "ftl_config"},
		{"bad ftl knob", "POST", "/v1/jobs", `{"in":"x","device":"ftl","ftl_config":{"blocks":4}}`, 400, "bad_device_config", "ftl_config.blocks"},
		{"bad host knob", "POST", "/v1/jobs", `{"in":"x","device":"host","host_config":{"dirty_high_water":2}}`, 400, "bad_device_config", "host_config.dirty_high_water"},
		{"unknown corpus input", "POST", "/v1/jobs", `{"in":"corpus:ffffffffffff"}`, 404, "unknown_trace", ""},
		{"unknown job status", "GET", "/v1/jobs/job-999999", "", 404, "unknown_job", "job-999999"},
		{"unknown job result", "GET", "/v1/jobs/job-999999/result", "", 404, "unknown_job", ""},
		{"unknown job trace", "GET", "/v1/jobs/job-999999/trace", "", 404, "unknown_job", ""},
		{"result not finished", "GET", "/v1/jobs/" + failedID + "/result", "", 409, "job_not_finished", "failed"},
		{"bad limit", "GET", "/v1/jobs?limit=zero", "", 400, "bad_limit", "zero"},
		{"bad cursor", "GET", "/v1/jobs?after=first", "", 400, "bad_cursor", "first"},
		{"unknown corpus entry", "GET", "/v1/corpus/ffffffffffff", "", 404, "unknown_trace", ""},
		{"unknown corpus data", "GET", "/v1/corpus/ffffffffffff/data", "", 404, "unknown_trace", ""},
		{"undecodable upload", "POST", "/v1/corpus", "garbage\n", 400, "bad_trace", ""},
		{"bad trace format", "GET", "/v1/jobs/" + failedID + "/trace?format=svg", "", 400, "bad_format", "svg"},
		{"wrong method", "DELETE", "/v1/corpus", "", 405, "method_not_allowed", "DELETE"},
		{"unknown route", "GET", "/v1/nope", "", 404, "not_found", "/v1/nope"},
	}
	for _, tc := range cases {
		status, body := doReq(t, ts, tc.method, tc.path, tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.status, body)
			continue
		}
		env := errEnvelope(t, body)
		if env.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, env.Code, tc.code, env.Message)
		}
		if tc.mention != "" && !strings.Contains(env.Message, tc.mention) {
			t.Errorf("%s: message %q does not mention %q", tc.name, env.Message, tc.mention)
		}
	}

	// corpus_disabled needs a daemon without -data.
	bare := newServer(engine.Config{}, 1, 0)
	defer bare.Close()
	tsBare := httptest.NewServer(bare)
	defer tsBare.Close()
	status, body := doReq(t, tsBare, http.MethodGet, "/v1/corpus", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("corpus without -data: status %d", status)
	}
	if env := errEnvelope(t, body); env.Code != "corpus_disabled" {
		t.Fatalf("corpus without -data: code %q", env.Code)
	}
}

// TestDevicesEndpoint checks the capability catalogue: the registry
// serves every engine target with aliases, pipeline class and knobs,
// so clients can discover ftl_config/host_config without trial 400s.
func TestDevicesEndpoint(t *testing.T) {
	srv := newServer(engine.Config{}, 1, 0)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, body := doReq(t, ts, http.MethodGet, "/v1/devices", "")
	if status != http.StatusOK {
		t.Fatalf("devices: status %d: %s", status, body)
	}
	var got struct {
		Devices []engine.DeviceInfo `json:"devices"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	byName := map[string]engine.DeviceInfo{}
	for _, d := range got.Devices {
		byName[d.Name] = d
	}
	ftl, ok := byName["ftl"]
	if !ok || ftl.ConfigField != "ftl_config" || len(ftl.Knobs) == 0 {
		t.Fatalf("ftl entry: %+v", ftl)
	}
	host, ok := byName["host"]
	if !ok || host.ConfigField != "host_config" || len(host.Knobs) == 0 {
		t.Fatalf("host entry: %+v", host)
	}
	if ftl.Pipeline != engine.PipelineStateful || host.Pipeline != engine.PipelineStateful {
		t.Fatalf("ftl/host pipeline: %q / %q", ftl.Pipeline, host.Pipeline)
	}
	arr, ok := byName["array"]
	if !ok || arr.Pipeline != engine.PipelineShardParallel || !arr.Default {
		t.Fatalf("array entry: %+v", arr)
	}
	// Every advertised knob name must round-trip through a JobSpec
	// without tripping validation's unknown-field handling (knob names
	// are the JSON keys clients will send).
	for _, d := range got.Devices {
		for _, k := range d.Knobs {
			if k.Name == "" || k.Type == "" {
				t.Fatalf("device %s: malformed knob %+v", d.Name, k)
			}
		}
	}
}

// TestJobListPagination locks the cursor contract: pages walk newest
// to oldest, next_after continues exactly where the page ended, and —
// the regression this exists for — a cursor taken before new
// submissions still yields the same older jobs afterwards, because
// the cursor orders by the job's monotonic sequence number rather
// than page offset.
func TestJobListPagination(t *testing.T) {
	srv := newServer(engine.Config{}, 1, 0)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Jobs with a missing input settle (failed) almost immediately;
	// listing does not care about the state.
	submit := func(n int) []string {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = postJob(t, ts, engine.JobSpec{In: "/nonexistent/in.csv", Name: fmt.Sprintf("p%d", i)})
		}
		return ids
	}
	ids := submit(5) // job-1..job-5

	listPage := func(query string) jobPage {
		t.Helper()
		status, body := doReq(t, ts, http.MethodGet, "/v1/jobs"+query, "")
		if status != http.StatusOK {
			t.Fatalf("list%s: status %d: %s", query, status, body)
		}
		var page jobPage
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	page1 := listPage("?limit=2")
	if len(page1.Jobs) != 2 || page1.Jobs[0].ID != ids[4] || page1.Jobs[1].ID != ids[3] {
		t.Fatalf("page 1: %+v", page1.Jobs)
	}
	if page1.NextAfter != ids[3] {
		t.Fatalf("page 1 next_after = %q, want %q", page1.NextAfter, ids[3])
	}

	// New submissions land between page fetches — the cursor must not
	// shift the older pages.
	submit(3) // job-6..job-8

	page2 := listPage("?limit=2&after=" + page1.NextAfter)
	if len(page2.Jobs) != 2 || page2.Jobs[0].ID != ids[2] || page2.Jobs[1].ID != ids[1] {
		t.Fatalf("page 2 after new submissions: %+v", page2.Jobs)
	}
	if page2.NextAfter != ids[1] {
		t.Fatalf("page 2 next_after = %q, want %q", page2.NextAfter, ids[1])
	}
	page3 := listPage("?limit=2&after=" + page2.NextAfter)
	if len(page3.Jobs) != 1 || page3.Jobs[0].ID != ids[0] {
		t.Fatalf("page 3: %+v", page3.Jobs)
	}
	if page3.NextAfter != "" {
		t.Fatalf("page 3 next_after = %q, want end of listing", page3.NextAfter)
	}

	// The default (no limit) returns everything here; the cap is
	// documented as defaultListLimit.
	all := listPage("")
	if len(all.Jobs) != 8 || all.NextAfter != "" {
		t.Fatalf("unpaged list: %d jobs, next_after %q", len(all.Jobs), all.NextAfter)
	}
	if defaultListLimit != 100 || maxListLimit != 1000 {
		t.Fatalf("documented pagination caps changed: default %d, max %d", defaultListLimit, maxListLimit)
	}
}
