package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// corpusScheme prefixes job inputs that name an ingested trace by
// digest instead of a server-side path.
const corpusScheme = "corpus:"

// job is one queued batch reconstruction and its lifecycle record.
type job struct {
	ID        string         `json:"id"`
	Name      string         `json:"name"`
	State     string         `json:"state"`
	Error     string         `json:"error,omitempty"`
	Submitted time.Time      `json:"submitted"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	Spec      engine.JobSpec `json:"spec"`
	// Digest is the corpus input digest for corpus: jobs ("" for
	// server-side path inputs).
	Digest string `json:"digest,omitempty"`
	// Tenant is the submitting identity (anonTenant in anonymous
	// mode); concurrent-jobs quotas count a tenant's live jobs by it.
	Tenant string `json:"tenant,omitempty"`
	// Cached reports the result came from the result cache without a
	// reconstruction.
	Cached    bool       `json:"cached,omitempty"`
	Report    *jobReport `json:"report,omitempty"`
	OutPath   string     `json:"out_path,omitempty"`
	ResultURL string     `json:"result_url,omitempty"`
	// TraceID is the W3C trace the job's span timeline files under —
	// the submitting request's trace, so a client propagating
	// traceparent finds its job in its own distributed trace. TraceURL
	// appears once a timeline is in the flight recorder.
	TraceID  string `json:"trace_id,omitempty"`
	TraceURL string `json:"trace_url,omitempty"`

	result *engine.JobResult
	// traceParent is the submit request's trace position (parent of
	// the job's root span). Zero for journal-restored jobs, which keep
	// only the trace ID.
	traceParent obs.TraceContext
}

// jobReport is the JSON projection of an engine report.
type jobReport struct {
	Requests    int64   `json:"requests"`
	Shards      int     `json:"shards,omitempty"`
	Workers     int     `json:"workers"`
	IdleCount   int     `json:"idle_count"`
	IdleTotalUS float64 `json:"idle_total_us"`
	AsyncCount  int     `json:"async_count"`
	BetaMicros  float64 `json:"beta_us_per_sector,omitempty"`
	EtaMicros   float64 `json:"eta_us_per_sector,omitempty"`
	// DeviceStats are the replay target's own end-of-run counters
	// (FTL write amplification, host-stack cache hit rate, ...); empty
	// for targets that report none.
	DeviceStats []device.Stat `json:"device_stats,omitempty"`
}

func newJobReport(r *engine.Report) *jobReport {
	if r == nil {
		return nil
	}
	jr := &jobReport{
		Requests:    r.Requests,
		Shards:      r.Shards,
		Workers:     r.Workers,
		IdleCount:   r.IdleCount,
		IdleTotalUS: float64(r.IdleTotal) / float64(time.Microsecond),
		AsyncCount:  r.AsyncCount,
		DeviceStats: r.DeviceStats,
	}
	if r.Model != nil {
		jr.BetaMicros = r.Model.BetaMicros
		jr.EtaMicros = r.Model.EtaMicros
	}
	return jr
}

// server is the tracetrackerd HTTP API: a bounded pool of job
// executors over the sharded reconstruction engine, backed (when a
// data directory is attached) by the content-addressed corpus store,
// its result cache, and a crash-recovery journal.
//
// The API is versioned under /v1; the original unversioned routes
// remain as thin aliases (counted by daemon_legacy_requests_total) so
// existing clients keep working. Every non-2xx response carries the
// structured envelope {"error":{"code":"...","message":"..."}}.
//
//	POST /v1/jobs                  submit a JobSpec, returns {"id": ...}
//	GET  /v1/jobs                  list jobs (most recent first; ?limit=&after=)
//	GET  /v1/jobs/{id}             job status + report
//	GET  /v1/jobs/{id}/result      the reconstructed trace
//	GET  /v1/jobs/{id}/trace       span timeline (?format=perfetto)
//	GET  /v1/devices               reconstruction-target capability catalogue
//	POST /v1/corpus (also PUT)     ingest a trace (streaming body, dedup by digest)
//	GET  /v1/corpus                list ingested traces
//	GET  /v1/corpus/{digest}       entry metadata (unique prefix ok)
//	GET  /v1/corpus/{digest}/data  the trace bytes
//	GET  /healthz                  liveness + queue depth + cache counters
//	GET  /metrics                  Prometheus text-format metrics (root: scrapers)
//	GET  /debug/pprof/...          profiling endpoints (opt-in via -pprof)
//
// Retention bounds: a long-running daemon must not accumulate every
// result it ever produced.
const (
	// defaultRetainResults caps how many finished in-memory result
	// traces stay resident; older ones are evicted (their metadata
	// stays, the result endpoint then returns 410 Gone).
	defaultRetainResults = 16
	// retainJobs caps job metadata records; the oldest finished jobs
	// beyond it are forgotten entirely.
	retainJobs = 4096
	// defaultQueueCap bounds the executor queue; submissions beyond it
	// shed with 429 queue_full rather than blocking or growing without
	// bound (-queue overrides).
	defaultQueueCap = 1024
)

type server struct {
	base          engine.Config
	mux           *http.ServeMux
	retainResults int
	// ingestParallel is the corpus-upload decode worker count, applied
	// to the store when openData attaches it (uploads are streamed, so
	// ingest uses the double-buffered parallel decoder).
	ingestParallel int

	// Observability: every handler runs behind the request-ID/metrics
	// middleware (handler), the engine and corpus hooks feed reg, and
	// /metrics serves it. log is swapped in by setLogger before serving
	// (NopLogger until then, so embedded/test servers stay silent).
	reg      *obs.Registry
	em       *obs.EngineMetrics
	hm       *obs.HTTPMetrics
	log      *slog.Logger
	handler  http.Handler
	started  time.Time
	revision string

	// Job outcome counters; /healthz reads these, so its executed and
	// cache_hits fields are views of the same registry series.
	jobsExecuted *obs.Counter
	jobsCached   *obs.Counter
	jobsFailed   *obs.Counter
	slowJobs     *obs.Counter

	// flight holds recent job timelines for GET /jobs/{id}/trace;
	// slowJob, when > 0, is the wall-time threshold past which a
	// finished job logs its slowest spans (set before serving).
	flight  *obs.FlightRecorder
	slowJob time.Duration
	// Journal replay counters (set during openData).
	replayedJobs *obs.Counter
	requeuedJobs *obs.Counter

	// store and jnl are attached by openData before serving (nil when
	// the daemon runs without -data); immutable afterwards.
	store *corpus.Store
	jnl   *journal

	// Admission control (see admission.go): identity, rate limits and
	// quotas, configured before serving. maxUpload caps a corpus upload
	// body in bytes (0 = unlimited) with an enveloped 413. rejected
	// labels daemon_rejected_total lazily by {reason,tenant}.
	adm       admission
	maxUpload int64
	rejected  func(reason, tenant string) *obs.Counter
	// avgJobNs is an EWMA of recent job wall times; queue-full
	// Retry-After derives from it and the backlog.
	avgJobNs  atomic.Int64
	queueCap  int
	executors int

	mu     sync.Mutex
	jobs   map[string]*job // guarded by mu
	order  []string        // guarded by mu
	nextID int             // guarded by mu
	closed bool            // guarded by mu
	// corpusUsed is the per-tenant ingested corpus bytes (rebuilt from
	// entry sidecars by openData, maintained on upload) backing the
	// corpus-bytes quota. guarded by mu
	corpusUsed map[string]int64

	queue chan *job
	wg    sync.WaitGroup
	// stopRequeue aborts a journal-replay enqueue still in progress at
	// shutdown; requeueDone is closed when that enqueue has stopped.
	stopRequeue chan struct{}
	requeueDone chan struct{}
}

// newServer builds a server executing up to concurrent jobs at once,
// each on an engine derived from base, retaining at most
// retainResults finished in-memory result traces (<=0 = default).
func newServer(base engine.Config, concurrent, retainResults int) *server {
	return newServerCap(base, concurrent, retainResults, defaultQueueCap)
}

// newServerCap is newServer with an explicit executor-queue capacity
// (<=0 = default); overload tests shrink it to force shedding.
func newServerCap(base engine.Config, concurrent, retainResults, queueCap int) *server {
	if concurrent <= 0 {
		concurrent = 2
	}
	if retainResults <= 0 {
		retainResults = defaultRetainResults
	}
	if queueCap <= 0 {
		queueCap = defaultQueueCap
	}
	requeueDone := make(chan struct{})
	close(requeueDone) // no replay in progress until openData
	s := &server{
		base:          base,
		mux:           http.NewServeMux(),
		retainResults: retainResults,
		jobs:          make(map[string]*job),
		corpusUsed:    make(map[string]int64),
		queue:         make(chan *job, queueCap),
		queueCap:      queueCap,
		executors:     concurrent,
		stopRequeue:   make(chan struct{}),
		requeueDone:   requeueDone,
		started:       time.Now(),
		revision:      buildRevision(),
	}
	s.reg = obs.NewRegistry()
	s.em = obs.NewEngineMetrics(s.reg)
	s.base.Metrics = s.em // every job engine derives from base and shares the hook
	s.hm = obs.NewHTTPMetrics(s.reg, "daemon")
	s.jobsExecuted = s.reg.Counter("daemon_jobs_total",
		"Finished jobs by outcome.", obs.Labels{"outcome": "executed"})
	s.jobsCached = s.reg.Counter("daemon_jobs_total",
		"Finished jobs by outcome.", obs.Labels{"outcome": "cached"})
	s.jobsFailed = s.reg.Counter("daemon_jobs_total",
		"Finished jobs by outcome.", obs.Labels{"outcome": "failed"})
	s.replayedJobs = s.reg.Counter("daemon_journal_replayed_jobs_total",
		"Jobs restored from the journal at startup.", nil)
	s.requeuedJobs = s.reg.Counter("daemon_journal_requeued_jobs_total",
		"Interrupted jobs re-queued from the journal at startup.", nil)
	s.slowJobs = s.reg.Counter("daemon_slow_jobs_total",
		"Jobs whose wall time crossed the slow-job threshold.", nil)
	s.flight = obs.NewFlightRecorder(obs.DefaultFlightRecorderCapacity)
	s.flight.SetEvictionCounter(s.reg.Counter("daemon_trace_evictions_total",
		"Job timelines evicted from the trace flight recorder.", nil))
	s.reg.GaugeFunc("daemon_trace_recorder_timelines", "Job timelines held in the trace flight recorder.", nil,
		func() float64 { return float64(s.flight.Len()) })
	s.rejected = func(reason, tenant string) *obs.Counter {
		return s.reg.Counter("daemon_rejected_total",
			"Requests rejected by admission control, by reason and tenant.",
			obs.Labels{"reason": reason, "tenant": tenant})
	}
	obs.RegisterRuntimeMetrics(s.reg)
	s.reg.GaugeFunc("daemon_queue_depth", "Jobs waiting in the executor queue.", nil,
		func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("daemon_queue_capacity", "Executor queue capacity; submissions beyond it shed with 429.", nil,
		func() float64 { return float64(s.queueCap) })
	s.reg.GaugeFunc("daemon_rate_tenants", "Tenants with live rate-limit or jobs/min bucket state.", nil,
		func() float64 { return float64(s.adm.trackedTenants()) })
	s.reg.GaugeFunc("daemon_jobs_running", "Jobs currently executing.", nil,
		func() float64 { _, running := s.countStates(); return float64(running) })
	s.reg.GaugeFunc("daemon_uptime_seconds", "Seconds since the daemon started.", nil,
		func() float64 { return time.Since(s.started).Seconds() })
	s.setLogger(obs.NopLogger())
	s.mountRoutes()
	for i := 0; i < concurrent; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// apiRoute is one entry in the daemon's route table: the canonical
// path lives under /v1; legacy marks routes that predate versioning
// and keep an unversioned alias for old clients.
type apiRoute struct {
	method string
	path   string // path relative to /v1, e.g. "/jobs/{id}"
	h      http.HandlerFunc
	legacy bool
}

// routes is the single source of the daemon's API surface — the
// contract test walks this same table, so a route cannot be mounted
// without being covered.
func (s *server) routes() []apiRoute {
	return []apiRoute{
		{"POST", "/jobs", s.handleSubmit, true},
		{"GET", "/jobs", s.handleList, true},
		{"GET", "/jobs/{id}", s.handleStatus, true},
		{"GET", "/jobs/{id}/result", s.handleResult, true},
		{"GET", "/jobs/{id}/trace", s.handleTrace, true},
		{"GET", "/devices", s.handleDevices, false},
		{"POST", "/corpus", s.handleCorpusIngest, true},
		{"PUT", "/corpus", s.handleCorpusIngest, true},
		{"GET", "/corpus", s.handleCorpusList, true},
		{"GET", "/corpus/{digest}", s.handleCorpusInfo, true},
		{"GET", "/corpus/{digest}/data", s.handleCorpusData, true},
	}
}

// mountRoutes wires the route table into the mux: each route under
// /v1, legacy aliases at their original unversioned paths (wrapped to
// count daemon_legacy_requests_total per route), plus enveloped 405
// fallbacks for known paths and an enveloped 404 for everything else.
// /healthz and /metrics stay at the root — operational endpoints that
// load balancers and Prometheus scrapers have configured by path.
func (s *server) mountRoutes() {
	allow := map[string][]string{}
	for _, rt := range s.routes() {
		s.mux.HandleFunc(rt.method+" /v1"+rt.path, rt.h)
		allow["/v1"+rt.path] = append(allow["/v1"+rt.path], rt.method)
		if rt.legacy {
			c := s.reg.Counter("daemon_legacy_requests_total",
				"Requests served through pre-v1 unversioned route aliases.",
				obs.Labels{"route": rt.method + " " + rt.path})
			h := rt.h
			s.mux.HandleFunc(rt.method+" "+rt.path, func(w http.ResponseWriter, r *http.Request) {
				c.Inc()
				h(w, r)
			})
			allow[rt.path] = append(allow[rt.path], rt.method)
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	allow["/healthz"] = []string{"GET"}
	allow["/metrics"] = []string{"GET"}
	// Method-less fallbacks: a known path with the wrong method answers
	// an enveloped 405 (ServeMux's own 405 is plain text).
	for path, methods := range allow {
		seen := map[string]bool{}
		uniq := methods[:0]
		for _, m := range methods {
			if !seen[m] {
				seen[m] = true
				uniq = append(uniq, m)
			}
		}
		ms := strings.Join(uniq, ", ")
		s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", ms)
			httpError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Errorf("method %s not allowed (allow: %s)", r.Method, ms))
		})
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "not_found",
			fmt.Errorf("no route %s %s; the API lives under /v1", r.Method, r.URL.Path))
	})
}

// setLogger attaches the daemon logger and rebuilds the middleware
// chain around it: obs middleware (request IDs, metrics, logging),
// then admission (serveAdmitted), then the route mux. Call before
// serving traffic.
func (s *server) setLogger(log *slog.Logger) {
	s.log = log
	s.handler = obs.Middleware(log, s.hm, http.HandlerFunc(s.serveAdmitted))
}

// setAuth enables API-key authentication (nil keeps anonymous mode).
// Call before serving traffic.
func (s *server) setAuth(t *authTable) {
	s.adm.auth = t
}

// setRateLimits configures the request-rate token buckets (req/s, 0 =
// unlimited; bursts default to 2× the rate). Call before serving
// traffic.
func (s *server) setRateLimits(globalRate, tenantRate float64) {
	if globalRate > 0 {
		b := newTokenBucket(globalRate, 2*globalRate)
		s.adm.global = b
		s.reg.GaugeFunc("daemon_rate_tokens",
			"Global request rate-limit token-bucket level.",
			obs.Labels{"scope": "global"}, b.level)
	}
	if tenantRate > 0 {
		s.adm.tenantRate = tenantRate
		s.adm.tenantBurst = 2 * tenantRate
	}
}

// serveAdmitted sits between the obs middleware and the route mux:
// it authenticates the request, applies the request rate limits, and
// binds the tenant to the context before dispatching. /healthz and
// /metrics bypass admission — load balancers and scrapers are
// configured by path and carry no credentials.
func (s *server) serveAdmitted(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
		s.mux.ServeHTTP(w, r)
		return
	}
	tenant := anonTenant
	if s.adm.auth != nil {
		t, ok := s.adm.auth.lookup(apiKeyFrom(r))
		if !ok {
			s.reject(w, "unauthorized", tenant, http.StatusUnauthorized, "unauthorized",
				fmt.Errorf("missing or unknown API key (send Authorization: Bearer <key> or X-API-Key)"))
			return
		}
		tenant = t
	}
	if b := s.adm.global; b != nil {
		if ok, wait := b.take(); !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			s.reject(w, "rate_limited", tenant, http.StatusTooManyRequests, "rate_limited",
				fmt.Errorf("global request rate limit exceeded"))
			return
		}
	}
	if b := s.adm.tenantBucket(tenant); b != nil {
		if ok, wait := b.take(); !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			s.reject(w, "rate_limited", tenant, http.StatusTooManyRequests, "rate_limited",
				fmt.Errorf("tenant %q request rate limit exceeded", tenant))
			return
		}
	}
	// Bind the tenant in place on the shared request value (the same
	// idiom ServeMux uses for r.Pattern): a WithContext copy here would
	// hide the matched pattern from the obs middleware's route metrics.
	*r = *r.WithContext(withTenant(r.Context(), tenant))
	s.mux.ServeHTTP(w, r)
}

// reject answers an admission rejection: counts it under
// daemon_rejected_total{reason,tenant} and writes the error envelope.
//
//tracelint:errcode-sink 4
func (s *server) reject(w http.ResponseWriter, reason, tenant string, status int, code string, err error) {
	s.rejected(reason, tenant).Inc()
	httpError(w, status, code, err)
}

// enablePprof mounts the net/http/pprof handlers (opt-in via -pprof:
// profiles expose internals, so they are off by default). They sit
// behind the same middleware as the API, so scrapes are logged and
// counted under route="/debug/pprof/".
func (s *server) enablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// countStates scans job states under the lock (queued, running).
func (s *server) countStates() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		switch j.State {
		case stateQueued:
			queued++
		case stateRunning:
			running++
		}
	}
	return queued, running
}

// buildRevision is the VCS revision stamped into the binary ("dev"
// outside a git build) — surfaced in /healthz so an operator can tell
// which build answered.
func buildRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 7 {
				return s.Value[:7]
			}
		}
	}
	return "dev"
}

// openData attaches the corpus store, result cache and job journal
// rooted at dir, then replays the journal: finished jobs are restored
// (their results resolve from the recorded output path or the result
// cache), interrupted ones re-queue. Call before serving traffic.
func (s *server) openData(dir string) error {
	store, err := corpus.Open(dir)
	if err != nil {
		return err
	}
	store.SetParallel(s.ingestParallel)
	store.SetMetrics(obs.NewCorpusMetrics(s.reg))
	s.reg.GaugeFunc("corpus_traces", "Traces in the corpus catalogue.", nil,
		func() float64 { return float64(store.Len()) })
	jnl, recs, err := openJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return err
	}
	s.store = store
	s.jnl = jnl
	// Rebuild the per-tenant corpus usage backing the corpus-bytes
	// quota from the entry sidecars (entries older than tenant
	// attribution count against the anonymous tenant).
	s.mu.Lock()
	for _, e := range store.Entries() {
		tenant := e.Tenant
		if tenant == "" {
			tenant = anonTenant
		}
		s.corpusUsed[tenant] += e.Size
	}
	s.mu.Unlock()
	s.replay(recs)
	return nil
}

// replay rebuilds job state from journal records.
func (s *server) replay(recs []journalRecord) {
	var requeue []*job
	s.mu.Lock()
	for _, rec := range recs {
		switch rec.Op {
		case journalSubmit:
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			if suffix, ok := strings.CutPrefix(rec.ID, "job-"); ok {
				if n, err := strconv.Atoi(suffix); err == nil && n > s.nextID {
					s.nextID = n
				}
			}
			if _, dup := s.jobs[rec.ID]; dup {
				continue
			}
			j := &job{
				ID:        rec.ID,
				Name:      rec.Spec.Name,
				State:     stateQueued,
				Submitted: rec.Time,
				Spec:      *rec.Spec,
				Digest:    rec.Digest,
				Tenant:    rec.Tenant,
				TraceID:   rec.TraceID,
			}
			s.jobs[j.ID] = j
			s.order = append(s.order, j.ID)
		case journalDone:
			j, ok := s.jobs[rec.ID]
			if !ok {
				continue
			}
			t := rec.Time
			j.State = stateDone
			j.Finished = &t
			j.Report = rec.Report
			j.Cached = rec.Cached
			if rec.TraceID != "" {
				// The timeline itself lived in the old process's flight
				// recorder; the trace ID still names the distributed
				// trace the job ran under.
				j.TraceID = rec.TraceID
			}
			j.OutPath = ""
			if rec.OutPath != "" {
				if _, err := os.Stat(rec.OutPath); err == nil {
					j.OutPath = rec.OutPath
				}
			}
			if j.OutPath == "" && rec.Key != "" && s.store != nil {
				if p, _, ok := s.store.LookupResult(rec.Key); ok {
					j.OutPath = p
					j.Cached = true
				}
			}
			if j.OutPath != "" {
				j.ResultURL = "/v1/jobs/" + j.ID + "/result"
			}
		case journalFail:
			j, ok := s.jobs[rec.ID]
			if !ok {
				continue
			}
			t := rec.Time
			j.State = stateFailed
			j.Finished = &t
			j.Error = rec.Error
		}
	}
	for _, id := range s.order {
		if j := s.jobs[id]; j.State == stateQueued {
			requeue = append(requeue, j)
		}
	}
	restored := len(s.order)
	s.mu.Unlock()
	s.replayedJobs.Add(int64(restored))
	s.requeuedJobs.Add(int64(len(requeue)))
	if restored > 0 {
		s.log.Info("journal replayed", "jobs", restored, "requeued", len(requeue))
	}
	if len(requeue) == 0 {
		return
	}
	// Enqueue in the background: a backlog larger than the queue
	// buffer must not block startup (the listener comes up after
	// replay). Shutdown aborts the enqueue via stopRequeue; jobs not
	// yet enqueued stay submit-only in the journal and re-run on the
	// next start.
	done := make(chan struct{})
	s.requeueDone = done
	go func() {
		defer close(done)
		for _, j := range requeue {
			select {
			case s.queue <- j:
			case <-s.stopRequeue:
				return
			}
		}
	}()
}

// ServeHTTP implements http.Handler: every request passes through the
// request-ID / logging / metrics middleware before the route mux.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Close stops accepting submissions and waits for the executors to
// finish every queued and running job.
func (s *server) Close() { s.CloseGrace(0) }

// CloseGrace stops accepting submissions and drains the executors,
// waiting at most d (<=0 = forever). It reports whether the drain
// completed; on false, still-running jobs keep only a submit record in
// the journal and therefore re-run on the next start. The journal is
// flushed and closed either way.
func (s *server) CloseGrace(d time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	s.closed = true
	s.mu.Unlock()
	// Stop a replay enqueue before closing the queue — its sends are
	// the only ones outside s.mu. handleSubmit sends under s.mu after
	// checking closed, so no other send can race the close.
	close(s.stopRequeue)
	<-s.requeueDone
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	drained := true
	if d > 0 {
		select {
		case <-done:
		case <-time.After(d):
			drained = false
		}
	} else {
		<-done
	}
	if s.jnl != nil {
		if drained {
			// Clean shutdown: rewrite the journal to just the retained
			// jobs so it stays bounded across the daemon's lifetime.
			s.jnl.compactAndClose(s.journalSnapshot())
		} else {
			// Executors may still be running; leave the append-only
			// form so their interrupted jobs re-run on the next start.
			s.jnl.close()
		}
	}
	return drained
}

// journalSnapshot rebuilds the minimal journal for the retained jobs:
// one submit record each, plus a finish record for completed ones. The
// caller must have drained the executors.
func (s *server) journalSnapshot() []journalRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]journalRecord, 0, 2*len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		recs = append(recs, journalRecord{
			Op: journalSubmit, ID: j.ID, Time: j.Submitted, Spec: &j.Spec, Digest: j.Digest,
			Tenant: j.Tenant, TraceID: j.TraceID,
		})
		fin := j.Submitted
		if j.Finished != nil {
			fin = *j.Finished
		}
		switch j.State {
		case stateDone:
			key := ""
			if j.Digest != "" {
				// Same key the executor used: the fingerprint ignores
				// the In form, so the corpus: spec digests identically.
				key = engine.CacheKey(j.Digest, j.Spec)
			}
			recs = append(recs, journalRecord{
				Op: journalDone, ID: j.ID, Time: fin,
				Key: key, OutPath: j.OutPath, Cached: j.Cached, Report: j.Report,
				TraceID: j.TraceID,
			})
		case stateFailed:
			recs = append(recs, journalRecord{
				Op: journalFail, ID: j.ID, Time: fin, Error: j.Error,
			})
		}
	}
	return recs
}

// worker executes queued jobs one at a time, short-circuiting corpus
// jobs whose (input digest, spec fingerprint) key is already in the
// result cache.
func (s *server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		now := time.Now()
		s.mu.Lock()
		j.State = stateRunning
		j.Started = &now
		parent := j.traceParent
		if !parent.Valid() && j.TraceID != "" {
			// Journal-restored job: keep its trace ID, no parent span.
			parent = obs.TraceContext{TraceID: j.TraceID}
		}
		s.mu.Unlock()
		s.log.Info("job started", "job", j.ID, "name", j.Name, "method", j.Spec.Method)

		// Each job records into its own tracer on an engine config
		// derived from the shared base; the timeline parks in the
		// flight recorder however the job ends.
		tracer := obs.NewTracer(j.ID+" "+j.Name, 0, parent)
		cfg := s.base
		cfg.Trace = tracer

		var res *engine.JobResult
		var err error
		hit := false
		key := ""
		runSpec := j.Spec
		if j.Digest != "" {
			if s.store == nil {
				err = fmt.Errorf("job %s has corpus input but the daemon runs without -data", j.ID)
			} else if p, perr := s.store.BlobPath(j.Digest); perr != nil {
				err = perr
			} else {
				runSpec.In = p
				key = engine.CacheKey(j.Digest, runSpec)
				res, hit, err = engine.RunJobCached(cfg, runSpec, j.Digest, s.store)
			}
		} else {
			res, err = engine.RunJob(cfg, runSpec)
		}

		fin := time.Now()
		// Fold the wall time into the EWMA feeding queue-full
		// Retry-After (racy read-modify-write is fine: it is a hint).
		wall := fin.Sub(now).Nanoseconds()
		if old := s.avgJobNs.Load(); old > 0 {
			wall = (3*old + wall) / 4
		}
		s.avgJobNs.Store(wall)
		jt := tracer.Finish()
		s.flight.Add(j.ID, jt)
		rec := journalRecord{ID: j.ID, Time: fin, Key: key, Cached: hit, TraceID: jt.TraceID}
		s.mu.Lock()
		j.Finished = &fin
		j.TraceID = jt.TraceID
		j.TraceURL = "/v1/jobs/" + j.ID + "/trace"
		if err != nil {
			s.jobsFailed.Inc()
			j.State = stateFailed
			j.Error = err.Error()
			rec.Op = journalFail
			rec.Error = j.Error
		} else {
			if hit {
				s.jobsCached.Inc()
			} else {
				s.jobsExecuted.Inc()
			}
			j.State = stateDone
			j.Cached = hit
			j.result = res
			j.Report = newJobReport(res.Report)
			j.OutPath = res.OutPath
			j.ResultURL = "/v1/jobs/" + j.ID + "/result"
			rec.Op = journalDone
			rec.OutPath = res.OutPath
			rec.Report = j.Report
		}
		s.prune()
		s.mu.Unlock()
		if err != nil {
			s.log.Warn("job failed", "job", j.ID, "error", err, "duration", fin.Sub(now))
		} else {
			s.log.Info("job finished", "job", j.ID, "cached", hit, "duration", fin.Sub(now))
		}
		if wall := fin.Sub(now); s.slowJob > 0 && wall >= s.slowJob {
			s.slowJobs.Inc()
			s.log.Warn("slow job", "job", j.ID, "duration", wall,
				"threshold", s.slowJob, "trace_id", jt.TraceID,
				"slowest_spans", obs.SummarizeSpans(jt.SlowestSpans(5)))
		}
		if s.jnl != nil {
			s.jnl.append(rec)
		}
	}
}

// queueRetryAfter derives the queue-full Retry-After from load: the
// time the executors need to work off the current backlog at the
// recent average job duration, clamped to [1s, 2m]. Before any job
// has finished, a conservative half-second average applies.
func (s *server) queueRetryAfter() time.Duration {
	avg := time.Duration(s.avgJobNs.Load())
	if avg <= 0 {
		avg = 500 * time.Millisecond
	}
	d := time.Duration(float64(avg) * float64(len(s.queue)+1) / float64(s.executors))
	if d < time.Second {
		d = time.Second
	}
	if d > 2*time.Minute {
		d = 2 * time.Minute
	}
	return d
}

// prune enforces the retention bounds; the caller holds s.mu. Oldest
// in-memory result traces beyond retainResults are evicted, and the
// oldest finished job records beyond retainJobs are dropped.
//
//tracelint:holds mu
func (s *server) prune() {
	resident := 0
	for _, id := range s.order {
		if j := s.jobs[id]; j.result != nil && j.result.Trace != nil {
			resident++
		}
	}
	for _, id := range s.order {
		if resident <= s.retainResults {
			break
		}
		if j := s.jobs[id]; j.result != nil && j.result.Trace != nil {
			j.result = nil
			resident--
		}
	}
	if len(s.order) > retainJobs {
		kept := s.order[:0]
		drop := len(s.order) - retainJobs
		for _, id := range s.order {
			j := s.jobs[id]
			if drop > 0 && (j.State == stateDone || j.State == stateFailed) {
				delete(s.jobs, id)
				drop--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec engine.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad_json", fmt.Errorf("bad job spec: %w", err))
		return
	}
	digest := ""
	if rest, ok := strings.CutPrefix(spec.In, corpusScheme); ok {
		if s.store == nil {
			httpError(w, http.StatusServiceUnavailable, "corpus_disabled",
				fmt.Errorf("corpus inputs need the daemon started with -data"))
			return
		}
		e, err := s.store.Resolve(rest)
		if err != nil {
			httpError(w, http.StatusNotFound, "unknown_trace", err)
			return
		}
		// "auto" means "infer it" — for corpus inputs the ingested
		// format is authoritative, same as an empty informat.
		if spec.InFormat != "" && spec.InFormat != "auto" && spec.InFormat != e.Format {
			httpError(w, http.StatusBadRequest, "format_conflict",
				fmt.Errorf("informat %q conflicts with ingested format %q", spec.InFormat, e.Format))
			return
		}
		spec.InFormat = e.Format
		// Canonicalize to the full digest so the persisted spec is
		// self-describing and replay-stable.
		spec.In = corpusScheme + e.Digest
		digest = e.Digest
	} else if spec.InFormat == "auto" && spec.In != "" {
		// Server-side path input: resolve the sniff at submit so the
		// persisted spec carries a concrete format.
		detected, err := trace.DetectFile(spec.In)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_format", err)
			return
		}
		spec.InFormat = detected
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		specError(w, err)
		return
	}
	tenant := tenantFrom(r.Context())
	// Quotas gate valid submits before the queue: a tenant at its own
	// limit is that tenant's problem (403), not server overload.
	if q := s.adm.quota.JobsPerMin; q > 0 {
		if ok, wait := s.adm.jobBucket(tenant).take(); !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			s.reject(w, "quota_jobs_per_min", tenant, http.StatusForbidden, "quota_exceeded",
				fmt.Errorf("tenant %q exceeded its %d jobs/min quota", tenant, q))
			return
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "shutting_down", fmt.Errorf("server shutting down"))
		return
	}
	// Concurrent-jobs quota, atomically with the enqueue below so
	// parallel submits cannot slip past the count.
	if q := s.adm.quota.ConcurrentJobs; q > 0 {
		active := 0
		for _, j := range s.jobs {
			if j.Tenant == tenant && (j.State == stateQueued || j.State == stateRunning) {
				active++
			}
		}
		if active >= q {
			s.mu.Unlock()
			s.reject(w, "quota_concurrent_jobs", tenant, http.StatusForbidden, "quota_exceeded",
				fmt.Errorf("tenant %q already has %d jobs queued or running (concurrent-jobs quota %d)", tenant, active, q))
			return
		}
	}
	s.nextID++
	tc := obs.TraceContextFrom(r.Context())
	j := &job{
		ID:          fmt.Sprintf("job-%d", s.nextID),
		Name:        spec.Name,
		State:       stateQueued,
		Submitted:   time.Now(),
		Spec:        spec,
		Digest:      digest,
		Tenant:      tenant,
		TraceID:     tc.TraceID,
		traceParent: tc,
	}
	// The non-blocking send happens under s.mu so it is atomic with
	// the closed check above (Close sets closed before closing the
	// channel, under the same lock).
	queued := false
	select {
	case s.queue <- j:
		queued = true
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	default:
	}
	if queued && s.jnl != nil {
		// Still under s.mu: a worker cannot pass its state-update lock
		// (and so cannot journal this job's finish) until we release,
		// which keeps the submit record strictly before its finish
		// record — replay depends on that order.
		s.jnl.append(journalRecord{
			Op: journalSubmit, ID: j.ID, Time: j.Submitted, Spec: &j.Spec, Digest: j.Digest,
			Tenant: j.Tenant, TraceID: j.TraceID,
		})
	}
	// Captured under the lock: a fast job can finish (and the worker
	// rewrite j's fields under s.mu) before this handler writes its
	// response.
	id, traceID := j.ID, j.TraceID
	s.mu.Unlock()
	if !queued {
		// Shed rather than block: 429 with a load-derived Retry-After
		// (time for the executors to work off the backlog), so a
		// well-behaved client backs off proportionally to the overload.
		w.Header().Set("Retry-After", retryAfterSeconds(s.queueRetryAfter()))
		s.reject(w, "queue_full", tenant, http.StatusTooManyRequests, "queue_full",
			fmt.Errorf("job queue full (%d queued); retry after the backlog drains", s.queueCap))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": id, "status_url": "/v1/jobs/" + id, "trace_id": traceID})
}

// List pagination bounds: pages default to defaultListLimit jobs and
// never exceed maxListLimit, whatever the client asks for.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// jobPage is the GET /v1/jobs response: one page of jobs, newest
// first, plus the cursor for the next page when more remain.
type jobPage struct {
	Jobs      []job  `json:"jobs"`
	NextAfter string `json:"next_after,omitempty"`
}

// jobSeq extracts the monotonic sequence number from a job ID.
func jobSeq(id string) (int, bool) {
	suffix, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(suffix)
	return n, err == nil && n > 0
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad_limit",
				fmt.Errorf("limit must be a positive integer, got %q", v))
			return
		}
		if n > maxListLimit {
			n = maxListLimit
		}
		limit = n
	}
	// The cursor is the ID of the last job on the previous page. Jobs
	// are compared by their monotonic sequence number, so the walk is
	// stable under concurrent submissions: new jobs only ever appear
	// before the cursor (on page one), never shifted into later pages —
	// and a pruned cursor job still orders the remainder correctly.
	afterSeq := -1
	if after := q.Get("after"); after != "" {
		n, ok := jobSeq(after)
		if !ok {
			httpError(w, http.StatusBadRequest, "bad_cursor",
				fmt.Errorf("after must be a job ID like job-42, got %q", after))
			return
		}
		afterSeq = n
	}
	// Snapshot under the lock, marshal outside it: serializing
	// hundreds of retained records must not stall workers flipping
	// job states.
	s.mu.Lock()
	page := jobPage{Jobs: []job{}}
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		if afterSeq >= 0 {
			if n, ok := jobSeq(id); !ok || n >= afterSeq {
				continue
			}
		}
		if len(page.Jobs) == limit {
			page.NextAfter = page.Jobs[len(page.Jobs)-1].ID
			break
		}
		page.Jobs = append(page.Jobs, *s.jobs[id])
	}
	s.mu.Unlock()
	data, err := json.Marshal(page)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var data []byte
	var err error
	if ok {
		data, err = json.Marshal(j)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown_job", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var state, outPath string
	var res *engine.JobResult
	var spec engine.JobSpec
	if ok {
		state = j.State
		res = j.result
		spec = j.Spec
		outPath = j.OutPath
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown_job", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if state != stateDone {
		httpError(w, http.StatusConflict, "job_not_finished", fmt.Errorf("job is %s", state))
		return
	}
	if outPath != "" {
		http.ServeFile(w, r, outPath)
		return
	}
	if res == nil || res.Trace == nil {
		httpError(w, http.StatusGone, "result_evicted",
			fmt.Errorf("in-memory result evicted (retention limit); rerun with an output path"))
		return
	}
	format := spec.OutFormat
	if format == "bin" {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	enc, err := trace.NewEncoder(format, w, spec.FIODevice)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	if err := trace.EncodeTrace(enc, res.Trace); err != nil {
		// Headers are gone; nothing better to do than log-by-status.
		return
	}
}

// handleTrace serves a finished job's span timeline from the flight
// recorder: the JobTrace JSON tree by default, the Chrome trace-event
// form (loadable in Perfetto) with ?format=perfetto. Still-queued or
// running jobs answer 409; jobs whose timeline the recorder has
// evicted (or that finished in an earlier process) answer 410.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state string
	if ok {
		state = j.State
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown_job", fmt.Errorf("unknown job %q", id))
		return
	}
	if state != stateDone && state != stateFailed {
		httpError(w, http.StatusConflict, "job_not_finished",
			fmt.Errorf("job is %s; its timeline lands when it finishes", state))
		return
	}
	jt, ok := s.flight.Get(id)
	if !ok {
		httpError(w, http.StatusGone, "trace_evicted",
			fmt.Errorf("trace evicted from the flight recorder (raise -trace-ring)"))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, jt)
	case "perfetto", "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.trace.json", id))
		obs.WriteChromeTrace(w, jt)
	default:
		httpError(w, http.StatusBadRequest, "bad_format",
			fmt.Errorf("unknown trace format %q (json, perfetto)", format))
	}
}

// requireStore answers 503 and returns nil when no data directory is
// attached.
func (s *server) requireStore(w http.ResponseWriter) *corpus.Store {
	if s.store == nil {
		httpError(w, http.StatusServiceUnavailable, "corpus_disabled",
			fmt.Errorf("corpus store disabled; start the daemon with -data"))
		return nil
	}
	return s.store
}

func (s *server) handleCorpusIngest(w http.ResponseWriter, r *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	tenant := tenantFrom(r.Context())
	var body io.Reader = r.Body
	if s.maxUpload > 0 {
		// MaxBytesReader aborts the streaming ingest mid-body; the
		// store's staging discipline removes the partial spool.
		body = http.MaxBytesReader(w, r.Body, s.maxUpload)
	}
	if q := s.adm.quota.CorpusBytes; q > 0 {
		s.mu.Lock()
		used := s.corpusUsed[tenant]
		s.mu.Unlock()
		if used >= q {
			s.reject(w, "quota_corpus_bytes", tenant, http.StatusForbidden, "quota_exceeded",
				fmt.Errorf("tenant %q has %d corpus bytes stored (quota %d)", tenant, used, q))
			return
		}
		body = &quotaReader{r: body, remaining: q - used}
	}
	entry, created, err := store.IngestAs(body, r.URL.Query().Get("format"), tenant)
	if err != nil {
		s.corpusIngestError(w, tenant, err)
		return
	}
	if created {
		s.mu.Lock()
		s.corpusUsed[tenant] += entry.Size
		s.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(map[string]any{"created": created, "entry": entry})
}

// corpusIngestError classifies an ingest failure onto the error
// contract. Cap and quota sentinels travel wrapped inside the decode
// error chain (the reader fails mid-stream), so they are checked
// before the ErrBadTrace chain they may share.
func (s *server) corpusIngestError(w http.ResponseWriter, tenant string, err error) {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		s.reject(w, "payload_too_large", tenant, http.StatusRequestEntityTooLarge, "payload_too_large",
			fmt.Errorf("upload exceeds the %d-byte cap", s.maxUpload))
	case errors.Is(err, errCorpusQuota):
		s.reject(w, "quota_corpus_bytes", tenant, http.StatusForbidden, "quota_exceeded",
			fmt.Errorf("upload would take tenant %q past its corpus-bytes quota (%d)", tenant, s.adm.quota.CorpusBytes))
	case errors.Is(err, corpus.ErrBadTrace):
		// Undecodable uploads are the client's fault; anything else
		// (disk full, unwritable store) is ours.
		httpError(w, http.StatusBadRequest, "bad_trace", err)
	default:
		httpError(w, http.StatusInternalServerError, "internal", err)
	}
}

func (s *server) handleCorpusList(w http.ResponseWriter, r *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	writeJSON(w, store.Entries())
}

func (s *server) handleCorpusInfo(w http.ResponseWriter, r *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	e, err := store.Resolve(r.PathValue("digest"))
	if err != nil {
		httpError(w, http.StatusNotFound, "unknown_trace", err)
		return
	}
	writeJSON(w, e)
}

func (s *server) handleCorpusData(w http.ResponseWriter, r *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	rc, e, err := store.OpenBlob(r.PathValue("digest"))
	if err != nil {
		httpError(w, http.StatusNotFound, "unknown_trace", err)
		return
	}
	defer rc.Close()
	if e.Format == "bin" {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Header().Set("Content-Length", strconv.FormatInt(e.Size, 10))
	io.Copy(w, rc)
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	total := len(s.jobs)
	s.mu.Unlock()
	queued, running := s.countStates()
	health := map[string]any{
		"ok":             true,
		"jobs":           total,
		"queued":         queued,
		"running":        running,
		"executed":       s.jobsExecuted.Value(),
		"cache_hits":     s.jobsCached.Value(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"revision":       s.revision,
	}
	if s.store != nil {
		health["corpus"] = s.store.Len()
	}
	writeJSON(w, health)
}

// handleDevices serves the reconstruction-target capability catalogue:
// every device the engine accepts, its aliases, per-device knobs and
// which execution pipeline it runs on. The catalogue comes from the
// same registry JobSpec validation uses, so discovery cannot drift
// from enforcement.
func (s *server) handleDevices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"devices": engine.Devices()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// apiError is the envelope every non-2xx response carries.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// httpError writes the structured error envelope: a stable
// machine-readable code plus a human-readable message.
//
//tracelint:errcode-sink 2
func httpError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{"error": {Code: code, Message: err.Error()}})
}

// specError maps a JobSpec rejection to its envelope: typed engine
// validation errors carry their own stable code and name the
// offending field; anything else is a generic bad spec.
func specError(w http.ResponseWriter, err error) {
	var ve *engine.ValidationError
	if errors.As(err, &ve) {
		httpError(w, http.StatusBadRequest, ve.Code, ve)
		return
	}
	httpError(w, http.StatusBadRequest, "bad_spec", err)
}
