package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
)

// Job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one queued batch reconstruction and its lifecycle record.
type job struct {
	ID        string         `json:"id"`
	Name      string         `json:"name"`
	State     string         `json:"state"`
	Error     string         `json:"error,omitempty"`
	Submitted time.Time      `json:"submitted"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	Spec      engine.JobSpec `json:"spec"`
	Report    *jobReport     `json:"report,omitempty"`
	OutPath   string         `json:"out_path,omitempty"`
	ResultURL string         `json:"result_url,omitempty"`

	result *engine.JobResult
}

// jobReport is the JSON projection of an engine report.
type jobReport struct {
	Requests    int64   `json:"requests"`
	Shards      int     `json:"shards,omitempty"`
	Workers     int     `json:"workers"`
	IdleCount   int     `json:"idle_count"`
	IdleTotalUS float64 `json:"idle_total_us"`
	AsyncCount  int     `json:"async_count"`
	BetaMicros  float64 `json:"beta_us_per_sector,omitempty"`
	EtaMicros   float64 `json:"eta_us_per_sector,omitempty"`
}

func newJobReport(r *engine.Report) *jobReport {
	if r == nil {
		return nil
	}
	jr := &jobReport{
		Requests:    r.Requests,
		Shards:      r.Shards,
		Workers:     r.Workers,
		IdleCount:   r.IdleCount,
		IdleTotalUS: float64(r.IdleTotal) / float64(time.Microsecond),
		AsyncCount:  r.AsyncCount,
	}
	if r.Model != nil {
		jr.BetaMicros = r.Model.BetaMicros
		jr.EtaMicros = r.Model.EtaMicros
	}
	return jr
}

// server is the tracetrackerd HTTP API: a bounded pool of job
// executors over the sharded reconstruction engine.
//
//	POST /jobs              submit a JobSpec, returns {"id": ...}
//	GET  /jobs              list all jobs (most recent first)
//	GET  /jobs/{id}         job status + report
//	GET  /jobs/{id}/result  the reconstructed trace
//	GET  /healthz           liveness + queue depth
// Retention bounds: a long-running daemon must not accumulate every
// result it ever produced.
const (
	// defaultRetainResults caps how many finished in-memory result
	// traces stay resident; older ones are evicted (their metadata
	// stays, the result endpoint then returns 410 Gone).
	defaultRetainResults = 16
	// retainJobs caps job metadata records; the oldest finished jobs
	// beyond it are forgotten entirely.
	retainJobs = 4096
)

type server struct {
	base          engine.Config
	mux           *http.ServeMux
	retainResults int

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool

	queue chan *job
	wg    sync.WaitGroup
}

// newServer builds a server executing up to concurrent jobs at once,
// each on an engine derived from base, retaining at most
// retainResults finished in-memory result traces (<=0 = default).
func newServer(base engine.Config, concurrent, retainResults int) *server {
	if concurrent <= 0 {
		concurrent = 2
	}
	if retainResults <= 0 {
		retainResults = defaultRetainResults
	}
	s := &server{
		base:          base,
		mux:           http.NewServeMux(),
		retainResults: retainResults,
		jobs:          make(map[string]*job),
		queue:         make(chan *job, 1024),
	}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	for i := 0; i < concurrent; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops accepting submissions and waits for the executors to
// finish every queued and running job.
func (s *server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	// Safe: handleSubmit only sends to the queue under s.mu after
	// checking closed, so no send can race this close.
	close(s.queue)
	s.wg.Wait()
}

// worker executes queued jobs one at a time.
func (s *server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		now := time.Now()
		s.mu.Lock()
		j.State = stateRunning
		j.Started = &now
		s.mu.Unlock()

		res, err := engine.RunJob(s.base, j.Spec)

		fin := time.Now()
		s.mu.Lock()
		j.Finished = &fin
		if err != nil {
			j.State = stateFailed
			j.Error = err.Error()
		} else {
			j.State = stateDone
			j.result = res
			j.Report = newJobReport(res.Report)
			j.OutPath = res.OutPath
			j.ResultURL = "/jobs/" + j.ID + "/result"
		}
		s.prune()
		s.mu.Unlock()
	}
}

// prune enforces the retention bounds; the caller holds s.mu. Oldest
// in-memory result traces beyond retainResults are evicted, and the
// oldest finished job records beyond retainJobs are dropped.
func (s *server) prune() {
	resident := 0
	for _, id := range s.order {
		if j := s.jobs[id]; j.result != nil && j.result.Trace != nil {
			resident++
		}
	}
	for _, id := range s.order {
		if resident <= s.retainResults {
			break
		}
		if j := s.jobs[id]; j.result != nil && j.result.Trace != nil {
			j.result = nil
			resident--
		}
	}
	if len(s.order) > retainJobs {
		kept := s.order[:0]
		drop := len(s.order) - retainJobs
		for _, id := range s.order {
			j := s.jobs[id]
			if drop > 0 && (j.State == stateDone || j.State == stateFailed) {
				delete(s.jobs, id)
				drop--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec engine.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server shutting down"))
		return
	}
	s.nextID++
	j := &job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Name:      spec.Name,
		State:     stateQueued,
		Submitted: time.Now(),
		Spec:      spec,
	}
	// The non-blocking send happens under s.mu so it is atomic with
	// the closed check above (Close sets closed before closing the
	// channel, under the same lock).
	queued := false
	select {
	case s.queue <- j:
		queued = true
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	default:
	}
	s.mu.Unlock()
	if !queued {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("job queue full"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": j.ID, "status_url": "/jobs/" + j.ID})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	// Snapshot under the lock, marshal outside it: serializing
	// thousands of retained records must not stall workers flipping
	// job states.
	s.mu.Lock()
	out := make([]job, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		out = append(out, *s.jobs[s.order[i]])
	}
	s.mu.Unlock()
	data, err := json.Marshal(out)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var data []byte
	var err error
	if ok {
		data, err = json.Marshal(j)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var state, outPath string
	var res *engine.JobResult
	var spec engine.JobSpec
	if ok {
		state = j.State
		res = j.result
		spec = j.Spec
		outPath = j.OutPath
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	if state != stateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s", state))
		return
	}
	if outPath != "" {
		http.ServeFile(w, r, outPath)
		return
	}
	if res == nil || res.Trace == nil {
		httpError(w, http.StatusGone, fmt.Errorf("in-memory result evicted (retention limit); rerun with an output path"))
		return
	}
	format := spec.OutFormat
	if format == "bin" {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	enc, err := trace.NewEncoder(format, w, spec.FIODevice)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if err := trace.EncodeTrace(enc, res.Trace); err != nil {
		// Headers are gone; nothing better to do than log-by-status.
		return
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued, running := 0, 0
	for _, j := range s.jobs {
		switch j.State {
		case stateQueued:
			queued++
		case stateRunning:
			running++
		}
	}
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"ok":      true,
		"jobs":    total,
		"queued":  queued,
		"running": running,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
