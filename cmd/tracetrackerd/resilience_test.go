package main

// Resilience tests (CI's resilience smoke runs these by name under
// -race): overload sheds with 429 + Retry-After instead of erroring,
// slow-loris connections are dropped by the server timeouts without
// consuming an executor or upload slot, injected storage faults
// surface as 500s with the store left consistent, and a torn journal
// tail from a mid-append ENOSPC replays cleanly after restart.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/faultfs"
)

// waitFailed polls the status endpoint until the job fails.
func waitFailed(t *testing.T, ts *httptest.Server, id string) *job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var j job
		if err := json.Unmarshal(getBody(t, ts.URL+"/v1/jobs/"+id), &j); err != nil {
			t.Fatal(err)
		}
		switch j.State {
		case stateFailed:
			return &j
		case stateDone:
			t.Fatalf("job %s finished, want failure", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never failed", id)
	return nil
}

// TestOverloadShedding is the acceptance scenario: a one-executor,
// one-slot-queue daemon under ~3x its capacity must shed with 429 +
// Retry-After rather than fail — zero 5xx for well-formed requests,
// every accepted job reaching done, and the server-side queue_full
// counter agreeing exactly with the client-observed shed count.
func TestOverloadShedding(t *testing.T) {
	srv := newServerCap(engine.Config{
		Workers: 2, MinShardRequests: 32, MaxShardRequests: 128, MinIdleGap: 500 * time.Microsecond,
	}, 1, 0, 1)
	if err := srv.openData(filepath.Join(t.TempDir(), "data")); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := bench.RunLoad(bench.LoadOptions{
		BaseURL:       ts.URL,
		Tenants:       6, // vs capacity 2 (1 executor + 1 queue slot)
		Duration:      2 * time.Second,
		TraceRequests: 4000,
		UploadEvery:   500,
		Log:           func(s string) { t.Log(s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServerErrors != 0 {
		t.Errorf("%d server errors under overload, want 0", rep.ServerErrors)
	}
	if rep.ClientErrors != 0 {
		t.Errorf("%d client errors for well-formed requests, want 0", rep.ClientErrors)
	}
	if rep.Shed == 0 {
		t.Error("no requests shed at 3x capacity")
	}
	if rep.Accepted == 0 {
		t.Error("no requests accepted under overload")
	}
	if rep.JobsCompleted != rep.JobsAccepted || rep.JobsFailed != 0 {
		t.Errorf("jobs: %d accepted, %d completed, %d failed; every accepted job must complete",
			rep.JobsAccepted, rep.JobsCompleted, rep.JobsFailed)
	}
	if rep.AcceptedP99Ms <= 0 {
		t.Errorf("accepted p99 = %vms, want > 0", rep.AcceptedP99Ms)
	}

	// The server's own ledger must match the clients': with no rate
	// limits configured, queue_full is the only 429 source.
	samples := scrapeMetrics(t, ts)
	shed, ok := metricValue(t, samples, "daemon_rejected_total",
		map[string]string{"reason": "queue_full", "tenant": anonTenant})
	if !ok || int64(shed) != rep.Shed {
		t.Errorf("queue_full counter = %v (found %v), clients observed %d sheds", shed, ok, rep.Shed)
	}
	if capacity, ok := metricValue(t, samples, "daemon_queue_capacity", nil); !ok || capacity != 1 {
		t.Errorf("daemon_queue_capacity = %v, %v; want 1", capacity, ok)
	}
}

// TestSlowLorisDisconnected: clients trickling headers or bodies are
// cut off by the http.Server deadlines (exercised on a real listener —
// httptest does not apply them) without consuming an executor or
// leaving a staged upload behind, and the daemon keeps serving.
func TestSlowLorisDisconnected(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	srv := dataServer(t, dataDir)
	defer srv.Close()
	hs := newHTTPServer("", srv, 200*time.Millisecond, time.Second, 5*time.Second, time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// awaitClose asserts the server hangs up on conn well before the
	// generous ceiling (the relevant timeout is 0.2-1s).
	awaitClose := func(conn net.Conn, what string) {
		t.Helper()
		start := time.Now()
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("%s: connection lived %v, want the server to drop it", what, waited)
		}
	}

	// Headers that never finish: ReadHeaderTimeout drops the client.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/jobs HTTP/1.1\r\nHost: loris\r\nX-Drip: ")
	awaitClose(conn, "header trickle")

	// A body that never finishes: ReadTimeout aborts the streaming
	// ingest mid-decode.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "POST /v1/corpus HTTP/1.1\r\nHost: loris\r\nContent-Length: 1000000\r\n\r\ntimestamp")
	awaitClose(conn2, "body trickle")

	// Neither connection consumed anything: no queued or running job,
	// no staged upload, no catalogued entry — and the daemon answers a
	// well-behaved client immediately.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if tmps, err := os.ReadDir(filepath.Join(dataDir, "tmp")); err == nil && len(tmps) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("staged upload left behind by the disconnected client")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if queued, running := srv.countStates(); queued != 0 || running != 0 {
		t.Fatalf("slow loris consumed executor slots: %d queued, %d running", queued, running)
	}
	if n := srv.store.Len(); n != 0 {
		t.Fatalf("store holds %d entries, want 0", n)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after loris: status %d", resp.StatusCode)
	}
}

// TestStorageFaultsSurfaceAs500: injected ENOSPC/EIO in the corpus
// object and result-cache writes must answer 500 (never a 4xx blaming
// the client), leave no staged files, not poison the result cache, and
// the daemon must recover fully once the fault clears — including
// across a restart.
func TestStorageFaultsSurfaceAs500(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	srv := dataServer(t, dataDir)
	fi := faultfs.New()
	srv.store.SetFaultInjector(fi)
	ts := httptest.NewServer(srv)

	blob := corpusBlob(t, "faulted", 64)

	// Object write fails mid-spool: the client's valid upload is a
	// server problem, not bad_trace.
	fi.Fail(faultfs.SinkCorpusObject, 64, syscall.ENOSPC)
	status, _, body := authedReq(t, ts, http.MethodPost, "/v1/corpus", "", blob)
	if status != http.StatusInternalServerError {
		t.Fatalf("faulted upload: status %d, want 500: %s", status, body)
	}
	if env := errEnvelope(t, body); env.Code != "internal" {
		t.Fatalf("faulted upload: code %q, want internal", env.Code)
	}
	if fi.Hits(faultfs.SinkCorpusObject) == 0 {
		t.Fatal("object fault never triggered")
	}
	if n := tmpEntryCount(t, dataDir); n != 0 {
		t.Fatalf("%d staged temp files left after the faulted upload", n)
	}
	if n := srv.store.Len(); n != 0 {
		t.Fatalf("store holds %d entries after the faulted upload, want 0", n)
	}

	// The fault clears; the same upload lands.
	fi.Clear(faultfs.SinkCorpusObject)
	digest := uploadCorpus(t, ts, blob, "")

	// Result-cache write fails: the job reports the storage failure...
	fi.Fail(faultfs.SinkCorpusResult, 32, syscall.EIO)
	spec := engine.JobSpec{In: "corpus:" + digest}
	id := postJob(t, ts, spec)
	j := waitFailed(t, ts, id)
	if !strings.Contains(j.Error, "caching its result") {
		t.Fatalf("faulted result job error = %q, want a result-caching failure", j.Error)
	}
	if n := tmpEntryCount(t, dataDir); n != 0 {
		t.Fatalf("%d staged temp files left after the faulted result write", n)
	}

	// ...GC finds nothing half-written, and the failed attempt did not
	// poison the cache: the same spec re-runs to completion.
	fi.Clear(faultfs.SinkCorpusResult)
	if _, err := srv.store.GC(); err != nil {
		t.Fatal(err)
	}
	id2 := postJob(t, ts, spec)
	j2 := waitDone(t, ts, id2)
	if j2.Cached {
		t.Fatal("retried job was a cache hit: the faulted write left a cached result")
	}

	// Restart on the same tree: journal and catalogue replay to a
	// consistent view of both attempts.
	ts.Close()
	srv.Close()
	srv2 := dataServer(t, dataDir)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if n := srv2.store.Len(); n != 1 {
		t.Fatalf("store holds %d entries after restart, want 1", n)
	}
	var failed, done job
	if err := json.Unmarshal(getBody(t, ts2.URL+"/v1/jobs/"+id), &failed); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(getBody(t, ts2.URL+"/v1/jobs/"+id2), &done); err != nil {
		t.Fatal(err)
	}
	if failed.State != stateFailed || done.State != stateDone {
		t.Fatalf("replayed states: %s=%s, %s=%s; want failed/done",
			id, failed.State, id2, done.State)
	}
}

// TestJournalTornTailReplay: an ENOSPC that tears a journal append
// mid-record must not take the daemon down, and the torn tail — real
// injected bytes, not a hand-crafted fixture — must replay cleanly on
// the next start.
func TestJournalTornTailReplay(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	srv := dataServer(t, dataDir)
	ts := httptest.NewServer(srv)

	blob := corpusBlob(t, "journaled", 64)
	digest := uploadCorpus(t, ts, blob, "")
	spec := engine.JobSpec{In: "corpus:" + digest}
	id1 := postJob(t, ts, spec)
	waitDone(t, ts, id1)

	// The disk fills: the next submit's journal append tears after 10
	// bytes, and the finish append fails outright.
	fi := faultfs.New()
	srv.jnl.setFaults(fi)
	fi.FailShort(faultfs.SinkJournal, 10, syscall.ENOSPC)
	id2 := postJob(t, ts, engine.JobSpec{In: "corpus:" + digest, Device: "ssd"})
	waitDone(t, ts, id2) // the daemon serves on despite the journal fault
	if hits := fi.Hits(faultfs.SinkJournal); hits < 2 {
		t.Fatalf("journal fault hits = %d, want >= 2 (submit + finish)", hits)
	}

	// Crash without the clean-shutdown compaction, leaving the torn
	// tail in place.
	srv.jnl.close()
	ts.Close()
	srv.Close()
	raw, err := os.ReadFile(filepath.Join(dataDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.HasSuffix(raw, []byte("\n")) {
		t.Fatal("fixture: journal tail is intact, the fault never tore a record")
	}

	// Replay tolerates the tear: the completed job survives, the job
	// whose submit record was torn is gone, and new work still runs.
	srv2 := dataServer(t, dataDir)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	var page jobPage
	if err := json.Unmarshal(getBody(t, ts2.URL+"/v1/jobs"), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != id1 || page.Jobs[0].State != stateDone {
		t.Fatalf("replayed jobs = %+v, want exactly %s done", page.Jobs, id1)
	}
	id3 := postJob(t, ts2, spec)
	j3 := waitDone(t, ts2, id3)
	if !j3.Cached {
		t.Errorf("post-replay resubmit was not a cache hit; the result cache did not survive")
	}
}
