package main

// Admission-control tests: the API-key table and constant-time lookup,
// the non-loopback startup guard, per-tenant quotas (corpus bytes,
// concurrent jobs, jobs/min) answering 403 while other tenants proceed,
// request rate limits answering 429, and the upload size cap answering
// 413 with the staged temp file gone. The quota and rate-limit tests
// always pair the rejected tenant with a second tenant whose identical
// request succeeds — isolation, not just rejection.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// authKeysFor parses an inline tenant:key table, failing the test on
// errors.
func authKeysFor(t *testing.T, lines string) *authTable {
	t.Helper()
	tbl, err := parseAuthKeys(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// corpusBlob synthesizes a small CSV trace blob; distinct names yield
// distinct digests.
func corpusBlob(t *testing.T, name string, requests int) []byte {
	t.Helper()
	tr, err := bench.GenerateTrace(requests)
	if err != nil {
		t.Fatal(err)
	}
	tr.Name = name
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// authedReq issues method+path with an optional Bearer key, returning
// status, headers and body.
func authedReq(t *testing.T, ts *httptest.Server, method, path, key string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// scrapeMetrics fetches and parses /metrics.
func scrapeMetrics(t *testing.T, ts *httptest.Server) []obs.Sample {
	t.Helper()
	samples, err := obs.ParseExposition(getBody(t, ts.URL+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// tmpEntryCount counts staged files under the store's tmp/ directory.
func tmpEntryCount(t *testing.T, dataDir string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dataDir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

func TestParseAuthKeys(t *testing.T) {
	tbl := authKeysFor(t, "# comment\n\n  alice : key-a \nbob:key-b\n")
	if tenant, ok := tbl.lookup("key-a"); !ok || tenant != "alice" {
		t.Fatalf("lookup(key-a) = %q, %v", tenant, ok)
	}
	if tenant, ok := tbl.lookup("key-b"); !ok || tenant != "bob" {
		t.Fatalf("lookup(key-b) = %q, %v", tenant, ok)
	}
	if _, ok := tbl.lookup("key-c"); ok {
		t.Fatal("unknown key must not resolve")
	}
	if _, ok := tbl.lookup(""); ok {
		t.Fatal("empty key must not resolve")
	}
	if _, err := parseAuthKeys(strings.NewReader("alice-no-colon\n")); err == nil {
		t.Fatal("malformed line must error")
	}
	if _, err := parseAuthKeys(strings.NewReader(":key\n")); err == nil {
		t.Fatal("empty tenant must error")
	}
	if _, err := parseAuthKeys(strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("empty table must error")
	}
}

func TestLoadAuthKeys(t *testing.T) {
	// File form.
	path := filepath.Join(t.TempDir(), "keys")
	if err := os.WriteFile(path, []byte("alice:file-key\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	tbl, err := loadAuthKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if tenant, ok := tbl.lookup("file-key"); !ok || tenant != "alice" {
		t.Fatalf("file table lookup = %q, %v", tenant, ok)
	}

	// Env form (inline, comma-separated).
	t.Setenv(authKeysEnv, "alice:env-a,bob:env-b")
	tbl, err = loadAuthKeys("")
	if err != nil {
		t.Fatal(err)
	}
	if tenant, ok := tbl.lookup("env-b"); !ok || tenant != "bob" {
		t.Fatalf("env table lookup = %q, %v", tenant, ok)
	}

	// Neither configured: anonymous mode.
	t.Setenv(authKeysEnv, "")
	tbl, err = loadAuthKeys("")
	if err != nil || tbl != nil {
		t.Fatalf("anonymous mode: table %v, err %v", tbl, err)
	}
}

// TestAddrGuard locks the startup refusal: a non-loopback listen
// address needs auth keys or an explicit -insecure.
func TestAddrGuard(t *testing.T) {
	cases := []struct {
		addr           string
		auth, insecure bool
		wantErr        bool
	}{
		{"127.0.0.1:8080", false, false, false},
		{"localhost:9090", false, false, false},
		{"[::1]:8080", false, false, false},
		{"0.0.0.0:8080", false, false, true},
		{"10.1.2.3:80", false, false, true},
		{":8080", false, false, true}, // empty host = all interfaces
		{"0.0.0.0:8080", true, false, false},
		{"0.0.0.0:8080", false, true, false},
	}
	for _, tc := range cases {
		err := checkAddrGuard(tc.addr, tc.auth, tc.insecure)
		if (err != nil) != tc.wantErr {
			t.Errorf("checkAddrGuard(%q, auth=%v, insecure=%v) = %v, wantErr %v",
				tc.addr, tc.auth, tc.insecure, err, tc.wantErr)
		}
	}
}

// TestAuthOverHTTP covers the wire surface: missing and unknown keys
// answer 401 with the envelope, both credential headers work, and
// /healthz and /metrics stay open for probes and scrapers.
func TestAuthOverHTTP(t *testing.T) {
	srv := newServer(engine.Config{Workers: 2}, 1, 0)
	defer srv.Close()
	srv.setAuth(authKeysFor(t, "alice:ka-111\nbob:kb-222"))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, _, body := authedReq(t, ts, http.MethodGet, "/v1/jobs", "", nil)
	if status != http.StatusUnauthorized {
		t.Fatalf("no key: status %d, want 401", status)
	}
	if env := errEnvelope(t, body); env.Code != "unauthorized" {
		t.Fatalf("no key: code %q, want unauthorized", env.Code)
	}
	if status, _, _ = authedReq(t, ts, http.MethodGet, "/v1/jobs", "wrong-key", nil); status != http.StatusUnauthorized {
		t.Fatalf("bad key: status %d, want 401", status)
	}
	if status, _, _ = authedReq(t, ts, http.MethodGet, "/v1/jobs", "ka-111", nil); status != http.StatusOK {
		t.Fatalf("bearer key: status %d, want 200", status)
	}

	// The X-API-Key header is an equivalent credential.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "kb-222")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key: status %d, want 200", resp.StatusCode)
	}

	// Probes and scrapers carry no credentials.
	health(t, ts)
	samples := scrapeMetrics(t, ts)
	if v, ok := metricValue(t, samples, "daemon_rejected_total",
		map[string]string{"reason": "unauthorized", "tenant": anonTenant}); !ok || v < 2 {
		t.Fatalf("unauthorized rejections counter = %v, %v; want >= 2", v, ok)
	}
}

// TestCorpusBytesQuota: a tenant may fill its byte quota exactly, the
// next upload is refused upfront, a streaming upload crossing the
// quota mid-body is cut off with its staged temp file removed — and a
// second tenant's identical uploads succeed throughout.
func TestCorpusBytesQuota(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	srv := dataServer(t, dataDir)
	defer srv.Close()
	srv.setAuth(authKeysFor(t, "alice:ka\nbob:kb\ncarol:kc"))
	blobA := corpusBlob(t, "quota-a", 64)
	blobB := corpusBlob(t, "quota-b", 64)
	blobBig := corpusBlob(t, "quota-big", 2048)
	if len(blobBig) <= len(blobA) {
		t.Fatalf("fixture: big blob (%d bytes) must exceed the quota (%d)", len(blobBig), len(blobA))
	}
	srv.adm.quota.CorpusBytes = int64(len(blobA))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// An upload ending exactly at the quota is allowed.
	if status, _, body := authedReq(t, ts, http.MethodPost, "/v1/corpus", "ka", blobA); status != http.StatusCreated {
		t.Fatalf("exact-fit upload: status %d: %s", status, body)
	}
	// At quota, the next upload is refused before any bytes stream.
	status, _, body := authedReq(t, ts, http.MethodPost, "/v1/corpus", "ka", blobB)
	if status != http.StatusForbidden {
		t.Fatalf("over-quota upload: status %d, want 403: %s", status, body)
	}
	if env := errEnvelope(t, body); env.Code != "quota_exceeded" {
		t.Fatalf("over-quota upload: code %q, want quota_exceeded", env.Code)
	}
	// The same request from another tenant succeeds.
	if status, _, body := authedReq(t, ts, http.MethodPost, "/v1/corpus", "kb", blobB); status != http.StatusCreated {
		t.Fatalf("second tenant's upload: status %d: %s", status, body)
	}
	// A fresh tenant streaming past the quota mid-body is cut off.
	status, _, body = authedReq(t, ts, http.MethodPost, "/v1/corpus", "kc", blobBig)
	if status != http.StatusForbidden {
		t.Fatalf("mid-stream quota cut: status %d, want 403: %s", status, body)
	}
	if env := errEnvelope(t, body); env.Code != "quota_exceeded" {
		t.Fatalf("mid-stream quota cut: code %q, want quota_exceeded", env.Code)
	}

	// The aborted ingest left no staged temp file, and only the two
	// accepted blobs are catalogued.
	if n := tmpEntryCount(t, dataDir); n != 0 {
		t.Fatalf("%d staged temp files left after quota rejections", n)
	}
	if n := srv.store.Len(); n != 2 {
		t.Fatalf("store holds %d entries, want 2", n)
	}
	samples := scrapeMetrics(t, ts)
	for _, tenant := range []string{"alice", "carol"} {
		if v, ok := metricValue(t, samples, "daemon_rejected_total",
			map[string]string{"reason": "quota_corpus_bytes", "tenant": tenant}); !ok || v != 1 {
			t.Errorf("quota_corpus_bytes rejections for %s = %v, %v; want 1", tenant, v, ok)
		}
	}
}

// TestConcurrentJobsQuota: a tenant with a live job is refused a
// second one while another tenant's identical submit is accepted.
func TestConcurrentJobsQuota(t *testing.T) {
	srv := newServer(engine.Config{Workers: 2}, 1, 0)
	defer srv.Close()
	srv.setAuth(authKeysFor(t, "alice:ka\nbob:kb"))
	srv.adm.quota.ConcurrentJobs = 1
	// Park a live job owned by alice: quota counting is over job
	// states, so a synthetic running job pins her at the limit without
	// a timing-dependent long reconstruction.
	srv.mu.Lock()
	srv.nextID = 1
	srv.jobs["job-1"] = &job{
		ID: "job-1", State: stateRunning, Tenant: "alice",
		Submitted: time.Now(), Spec: engine.JobSpec{In: "parked.csv"},
	}
	srv.order = append(srv.order, "job-1")
	srv.mu.Unlock()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := []byte(`{"in":"next.csv"}`)
	status, _, body := authedReq(t, ts, http.MethodPost, "/v1/jobs", "ka", spec)
	if status != http.StatusForbidden {
		t.Fatalf("at-quota submit: status %d, want 403: %s", status, body)
	}
	env := errEnvelope(t, body)
	if env.Code != "quota_exceeded" || !strings.Contains(env.Message, "concurrent-jobs") {
		t.Fatalf("at-quota submit: envelope %q %q", env.Code, env.Message)
	}
	if status, _, body := authedReq(t, ts, http.MethodPost, "/v1/jobs", "kb", spec); status != http.StatusAccepted {
		t.Fatalf("second tenant's submit: status %d: %s", status, body)
	}
}

// TestJobsPerMinQuota: the submission-rate quota refuses a tenant's
// burst overflow with Retry-After while another tenant submits freely.
func TestJobsPerMinQuota(t *testing.T) {
	srv := newServer(engine.Config{Workers: 2}, 1, 0)
	defer srv.Close()
	srv.setAuth(authKeysFor(t, "alice:ka\nbob:kb"))
	srv.adm.quota.JobsPerMin = 2
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := []byte(`{"in":"burst.csv"}`)
	for i := 0; i < 2; i++ {
		if status, _, body := authedReq(t, ts, http.MethodPost, "/v1/jobs", "ka", spec); status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i+1, status, body)
		}
	}
	status, hdr, body := authedReq(t, ts, http.MethodPost, "/v1/jobs", "ka", spec)
	if status != http.StatusForbidden {
		t.Fatalf("burst overflow: status %d, want 403: %s", status, body)
	}
	env := errEnvelope(t, body)
	if env.Code != "quota_exceeded" || !strings.Contains(env.Message, "jobs/min") {
		t.Fatalf("burst overflow: envelope %q %q", env.Code, env.Message)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("burst overflow: missing Retry-After")
	}
	if status, _, body := authedReq(t, ts, http.MethodPost, "/v1/jobs", "kb", spec); status != http.StatusAccepted {
		t.Fatalf("second tenant's submit: status %d: %s", status, body)
	}
}

// TestRateLimits: the global and per-tenant request buckets answer 429
// with Retry-After once the burst drains, probes bypass them, and one
// tenant draining its bucket does not affect another.
func TestRateLimits(t *testing.T) {
	t.Run("global", func(t *testing.T) {
		srv := newServer(engine.Config{Workers: 2}, 1, 0)
		defer srv.Close()
		srv.setRateLimits(1, 0) // burst 2
		ts := httptest.NewServer(srv)
		defer ts.Close()

		for i := 0; i < 2; i++ {
			if status, _, _ := authedReq(t, ts, http.MethodGet, "/v1/jobs", "", nil); status != http.StatusOK {
				t.Fatalf("request %d: status %d", i+1, status)
			}
		}
		status, hdr, body := authedReq(t, ts, http.MethodGet, "/v1/jobs", "", nil)
		if status != http.StatusTooManyRequests {
			t.Fatalf("drained bucket: status %d, want 429: %s", status, body)
		}
		if env := errEnvelope(t, body); env.Code != "rate_limited" {
			t.Fatalf("drained bucket: code %q, want rate_limited", env.Code)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatal("drained bucket: missing Retry-After")
		}
		health(t, ts) // probes bypass the limiter
		samples := scrapeMetrics(t, ts)
		if v, ok := metricValue(t, samples, "daemon_rejected_total",
			map[string]string{"reason": "rate_limited", "tenant": anonTenant}); !ok || v < 1 {
			t.Fatalf("rate_limited rejections = %v, %v; want >= 1", v, ok)
		}
		if _, ok := metricValue(t, samples, "daemon_rate_tokens", map[string]string{"scope": "global"}); !ok {
			t.Fatal("daemon_rate_tokens gauge missing")
		}
	})
	t.Run("per-tenant", func(t *testing.T) {
		srv := newServer(engine.Config{Workers: 2}, 1, 0)
		defer srv.Close()
		srv.setAuth(authKeysFor(t, "alice:ka\nbob:kb"))
		srv.setRateLimits(0, 1) // burst 2 per tenant
		ts := httptest.NewServer(srv)
		defer ts.Close()

		for i := 0; i < 2; i++ {
			if status, _, _ := authedReq(t, ts, http.MethodGet, "/v1/jobs", "ka", nil); status != http.StatusOK {
				t.Fatalf("request %d: status %d", i+1, status)
			}
		}
		if status, _, _ := authedReq(t, ts, http.MethodGet, "/v1/jobs", "ka", nil); status != http.StatusTooManyRequests {
			t.Fatalf("alice's drained bucket: status %d, want 429", status)
		}
		if status, _, _ := authedReq(t, ts, http.MethodGet, "/v1/jobs", "kb", nil); status != http.StatusOK {
			t.Fatalf("bob after alice's drain: status %d, want 200", status)
		}
	})
}

// TestUploadTooLarge: a body over -max-upload-bytes aborts the
// streaming ingest with an enveloped 413, leaving no staged temp file
// and no catalogue entry.
func TestUploadTooLarge(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	srv := dataServer(t, dataDir)
	defer srv.Close()
	srv.maxUpload = 256
	ts := httptest.NewServer(srv)
	defer ts.Close()

	blob := corpusBlob(t, "too-big", 256)
	if len(blob) <= 256 {
		t.Fatalf("fixture: blob (%d bytes) must exceed the %d-byte cap", len(blob), srv.maxUpload)
	}
	status, _, body := authedReq(t, ts, http.MethodPost, "/v1/corpus", "", blob)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413: %s", status, body)
	}
	if env := errEnvelope(t, body); env.Code != "payload_too_large" {
		t.Fatalf("oversized upload: code %q, want payload_too_large", env.Code)
	}
	if n := tmpEntryCount(t, dataDir); n != 0 {
		t.Fatalf("%d staged temp files left after the aborted upload", n)
	}
	if n := srv.store.Len(); n != 0 {
		t.Fatalf("store holds %d entries, want 0", n)
	}
	if v, ok := metricValue(t, scrapeMetrics(t, ts), "daemon_rejected_total",
		map[string]string{"reason": "payload_too_large", "tenant": anonTenant}); !ok || v != 1 {
		t.Fatalf("payload_too_large rejections = %v, %v; want 1", v, ok)
	}
}
