package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/trace"
)

// dataServer builds a server with small shards attached to the given
// data directory.
func dataServer(t *testing.T, dataDir string) *server {
	t.Helper()
	srv := newServer(engine.Config{
		Workers: 2, MinShardRequests: 32, MaxShardRequests: 128, MinIdleGap: 500 * time.Microsecond,
	}, 1, 0)
	if err := srv.openData(dataDir); err != nil {
		t.Fatal(err)
	}
	return srv
}

// uploadCorpus PUTs body to /corpus and returns the entry digest.
func uploadCorpus(t *testing.T, ts *httptest.Server, body []byte, format string) string {
	t.Helper()
	url := ts.URL + "/corpus"
	if format != "" {
		url += "?format=" + format
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, msg)
	}
	var ack struct {
		Created bool `json:"created"`
		Entry   struct {
			Digest string `json:"digest"`
		} `json:"entry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Entry.Digest == "" {
		t.Fatal("upload: empty digest")
	}
	return ack.Entry.Digest
}

// getBody fetches a URL and returns its bytes, asserting 200.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// health fetches /healthz as a map.
func health(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	var h map[string]any
	if err := json.Unmarshal(getBody(t, ts.URL+"/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestCorpusJobCacheHit is the acceptance scenario: the same JobSpec
// submitted twice against the same corpus digest performs exactly one
// reconstruction — the second run is a cache hit with byte-identical
// output.
func TestCorpusJobCacheHit(t *testing.T) {
	dir := t.TempDir()
	inPath, want := writeInput(t, dir)
	raw, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}
	srv := dataServer(t, filepath.Join(dir, "data"))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	digest := uploadCorpus(t, ts, raw, "") // format sniffed
	var wantBuf bytes.Buffer
	if err := trace.WriteCSV(&wantBuf, want); err != nil {
		t.Fatal(err)
	}

	spec := engine.JobSpec{In: "corpus:" + digest}
	id1 := postJob(t, ts, spec)
	j1 := waitDone(t, ts, id1)
	if j1.Cached {
		t.Fatal("first run reported cached")
	}
	if j1.Digest != digest {
		t.Fatalf("job digest: %q", j1.Digest)
	}
	if j1.OutPath == "" {
		t.Fatal("corpus job result not backed by the cache file: eviction would lose it")
	}
	got1 := getBody(t, ts.URL+"/jobs/"+id1+"/result")
	if !bytes.Equal(got1, wantBuf.Bytes()) {
		t.Fatal("first result diverges from sequential reconstruction")
	}

	// Resubmitting by digest prefix still hits: the spec canonicalizes.
	id2 := postJob(t, ts, engine.JobSpec{In: "corpus:" + digest[:12]})
	j2 := waitDone(t, ts, id2)
	if !j2.Cached {
		t.Fatal("second run was not a cache hit")
	}
	if j2.Report == nil || j2.Report.Requests != int64(want.Len()) {
		t.Fatalf("cache hit lost the report: %+v", j2.Report)
	}
	got2 := getBody(t, ts.URL+"/jobs/"+id2+"/result")
	if !bytes.Equal(got2, wantBuf.Bytes()) {
		t.Fatal("cached result diverges")
	}

	// informat "auto" on a corpus job means "use the ingested format"
	// and still lands on the same cache key.
	id3 := postJob(t, ts, engine.JobSpec{In: "corpus:" + digest, InFormat: "auto"})
	if j3 := waitDone(t, ts, id3); !j3.Cached {
		t.Fatal("auto-informat corpus job missed the cache")
	}

	h := health(t, ts)
	if h["executed"] != float64(1) || h["cache_hits"] != float64(2) {
		t.Fatalf("want exactly one reconstruction and two hits, got executed=%v cache_hits=%v",
			h["executed"], h["cache_hits"])
	}
}

// TestCorpusEndpoints covers upload dedup, listing, info by prefix,
// data round-trip, and the disabled-store path.
func TestCorpusEndpoints(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeInput(t, dir)
	raw, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}
	srv := dataServer(t, filepath.Join(dir, "data"))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	d1 := uploadCorpus(t, ts, raw, "csv")
	d2 := uploadCorpus(t, ts, raw, "") // dedup, sniffed
	if d1 != d2 {
		t.Fatalf("dedup: %s vs %s", d1, d2)
	}

	var list []map[string]any
	if err := json.Unmarshal(getBody(t, ts.URL+"/corpus"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0]["digest"] != d1 {
		t.Fatalf("list: %+v", list)
	}

	var info map[string]any
	if err := json.Unmarshal(getBody(t, ts.URL+"/corpus/"+d1[:10]), &info); err != nil {
		t.Fatal(err)
	}
	if info["digest"] != d1 || info["format"] != "csv" {
		t.Fatalf("info: %+v", info)
	}

	if data := getBody(t, ts.URL+"/corpus/"+d1+"/data"); !bytes.Equal(data, raw) {
		t.Fatal("corpus data round-trip diverges")
	}

	// Bad upload rejected, unknown digest 404.
	resp, err := http.Post(ts.URL+"/corpus", "text/plain", bytes.NewReader([]byte("garbage\n")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/corpus/ffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d", resp.StatusCode)
	}

	// A daemon without -data refuses corpus traffic and corpus jobs.
	bare := newServer(engine.Config{Workers: 1}, 1, 0)
	defer bare.Close()
	tsBare := httptest.NewServer(bare)
	defer tsBare.Close()
	resp, err = http.Get(tsBare.URL + "/corpus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-data corpus list: status %d", resp.StatusCode)
	}
	body, _ := json.Marshal(engine.JobSpec{In: "corpus:" + d1})
	resp, err = http.Post(tsBare.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-data corpus job: status %d", resp.StatusCode)
	}
}

// TestJournalReplayRecovery kills the server between jobs and checks
// the journal restart contract: finished jobs still serve their cached
// results without re-execution, and a job that was interrupted mid-run
// (submit record without a finish record) re-runs to byte-identical
// output.
func TestJournalReplayRecovery(t *testing.T) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	inPath, want := writeInput(t, dir)
	raw, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := trace.WriteCSV(&wantCSV, want); err != nil {
		t.Fatal(err)
	}

	// Phase 1: ingest and finish one job, then shut down cleanly.
	srv1 := dataServer(t, dataDir)
	ts1 := httptest.NewServer(srv1)
	digest := uploadCorpus(t, ts1, raw, "csv")
	id1 := postJob(t, ts1, engine.JobSpec{In: "corpus:" + digest})
	waitDone(t, ts1, id1)
	ts1.Close()
	srv1.Close()

	// A clean shutdown compacts the journal to the retained jobs: one
	// submit + one done record.
	jdata, err := os.ReadFile(filepath.Join(dataDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(jdata, []byte("\n")); lines != 2 {
		t.Fatalf("compacted journal has %d records, want 2:\n%s", lines, jdata)
	}

	// Phase 2: simulate a crash mid-job by appending a submit record
	// with no matching finish — exactly what a killed server leaves
	// behind. The spec differs from job-1 (binary output) so serving it
	// requires a genuine re-run, not a cache hit.
	interrupted := engine.JobSpec{In: "corpus:" + digest, InFormat: "csv", OutFormat: "bin"}.Normalized()
	rec := journalRecord{
		Op: journalSubmit, ID: "job-77", Time: time.Now(),
		Spec: &interrupted, Digest: digest,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	// A torn half-record after it must be tolerated too.
	line = append(line, '\n')
	line = append(line, []byte(`{"op":"done","id":"job-77","tor`)...)
	jf, err := os.OpenFile(filepath.Join(dataDir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write(line); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	// Phase 3: restart on the same data directory.
	srv2 := dataServer(t, dataDir)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	// The finished job survived the restart and serves its result from
	// the cache without re-executing.
	var j1 job
	if err := json.Unmarshal(getBody(t, ts2.URL+"/jobs/"+id1), &j1); err != nil {
		t.Fatal(err)
	}
	if j1.State != stateDone {
		t.Fatalf("replayed job state: %s", j1.State)
	}
	if got := getBody(t, ts2.URL+"/jobs/"+id1+"/result"); !bytes.Equal(got, wantCSV.Bytes()) {
		t.Fatal("replayed result diverges from the original reconstruction")
	}
	if j1.Report == nil || j1.Report.Requests != int64(want.Len()) {
		t.Fatalf("replayed job lost its report: %+v", j1.Report)
	}

	// The interrupted job re-queued and re-ran to byte-identical
	// output against a direct engine run of the same spec.
	j77 := waitDone(t, ts2, "job-77")
	if j77.Cached {
		t.Fatal("interrupted bin job cannot be a cache hit: nothing produced bin output before")
	}
	got77 := getBody(t, ts2.URL+"/jobs/job-77/result")
	directSpec := interrupted
	directSpec.In = filepath.Join(dataDir, "objects", digest)
	direct, err := engine.RunJob(srv2.base, directSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Encode via the streaming encoder — the form the result endpoint
	// and the cache serve (sentinel count, not the counted header).
	var wantBin bytes.Buffer
	if err := trace.EncodeTrace(trace.NewBinaryEncoder(&wantBin), direct.Trace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got77, wantBin.Bytes()) {
		t.Fatal("re-run output diverges from a direct reconstruction")
	}

	// Replay restored executed/cache_hits counters only for this
	// process: exactly the one re-run executed, zero for the restored
	// job.
	h := health(t, ts2)
	if h["executed"] != float64(1) {
		t.Fatalf("restart executed %v jobs, want 1 (the interrupted re-run)", h["executed"])
	}
	if fmt.Sprint(h["corpus"]) != "1" {
		t.Fatalf("corpus count after restart: %v", h["corpus"])
	}

	// Restart IDs continue after the journal's max.
	idNext := postJob(t, ts2, engine.JobSpec{In: "corpus:" + digest})
	var n int
	if _, err := fmt.Sscanf(idNext, "job-%d", &n); err != nil || n <= 77 {
		t.Fatalf("post-restart id %q does not continue the journal sequence", idNext)
	}
	waitDone(t, ts2, idNext)
}

// TestJournalReplayInterruptedHDDJob checks the restart contract for
// HDD-target jobs: an interrupted job (submit record without a finish
// — what a killed server leaves) re-queues on startup, re-runs through
// the epoch-pipelined HDD path at its full worker count, and serves a
// result byte-identical to the sequential HDD reconstruction.
func TestJournalReplayInterruptedHDDJob(t *testing.T) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	inPath, _ := writeInput(t, dir)
	raw, err := os.ReadFile(inPath)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: ingest the input, then shut down cleanly with no jobs.
	srv1 := dataServer(t, dataDir)
	ts1 := httptest.NewServer(srv1)
	digest := uploadCorpus(t, ts1, raw, "csv")
	ts1.Close()
	srv1.Close()

	// Phase 2: forge the crash artifact — a submit record for an HDD
	// job with no matching finish.
	interrupted := engine.JobSpec{
		In: "corpus:" + digest, InFormat: "csv", Device: "hdd", Parallel: 4,
	}.Normalized()
	rec := journalRecord{
		Op: journalSubmit, ID: "job-9", Time: time.Now(),
		Spec: &interrupted, Digest: digest,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(filepath.Join(dataDir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	// Phase 3: restart; the job re-runs (no prior result exists to hit).
	srv2 := dataServer(t, dataDir)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	j := waitDone(t, ts2, "job-9")
	if j.Cached {
		t.Fatal("interrupted HDD job cannot be a cache hit: it never finished")
	}
	if j.Report == nil || j.Report.Workers != 4 {
		t.Fatalf("HDD job report workers: %+v", j.Report)
	}
	if j.Report.Shards < 2 {
		t.Fatalf("HDD job ran %d epochs; the pipelined path should cut several", j.Report.Shards)
	}
	got := getBody(t, ts2.URL+"/jobs/job-9/result")

	// The expectation is the sequential HDD pipeline over the same
	// decoded blob — the pre-pipeline serial path.
	oldRT, err := trace.ReadCSV(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Reconstruct(oldRT, device.NewHDD(device.DefaultHDDConfig()), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := trace.WriteCSV(&wantCSV, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantCSV.Bytes()) {
		t.Fatal("re-run HDD result diverges from the sequential HDD reconstruction")
	}
}

// TestGracefulCloseGrace checks CloseGrace drains running jobs within
// the deadline and reports an exhausted deadline honestly.
func TestGracefulCloseGrace(t *testing.T) {
	dir := t.TempDir()
	inPath, _ := writeInput(t, dir)
	srv := newServer(engine.Config{Workers: 1}, 1, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	id := postJob(t, ts, engine.JobSpec{In: inPath})
	if !srv.CloseGrace(30 * time.Second) {
		t.Fatal("drain did not complete")
	}
	// The submitted job finished during the drain.
	var j job
	if err := json.Unmarshal(getBody(t, ts.URL+"/jobs/"+id), &j); err != nil {
		t.Fatal(err)
	}
	if j.State != stateDone {
		t.Fatalf("job state after drain: %s", j.State)
	}
	// Submissions after close are refused.
	body, _ := json.Marshal(engine.JobSpec{In: inPath})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: status %d", resp.StatusCode)
	}
	// Closing again is a no-op.
	if !srv.CloseGrace(time.Millisecond) {
		t.Fatal("second close reported failure")
	}
}
