package main

// TestStableCodeSync locks the three copies of the stable error-code
// vocabulary together: codes.go (the daemon's truth), the README's
// "stable codes" paragraph (the client contract), and the tracelint
// errcode analyzer's StableCodes (the compile-time gate). Each copy
// exists for a different consumer; this test is what makes them one
// vocabulary.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// analyzerCodes extracts the StableCodes slice literal from the
// tracelint errcode analyzer's source. Parsed, not imported: the tool
// is a separate module precisely so the daemon build does not depend
// on it.
func analyzerCodes(t *testing.T) []string {
	t.Helper()
	path := filepath.Join(repoRoot(t), "tools", "tracelint", "internal", "checks", "errcode", "errcode.go")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	var codes []string
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "StableCodes" || len(vs.Values) != 1 {
			return true
		}
		lit, ok := vs.Values[0].(*ast.CompositeLit)
		if !ok {
			t.Fatalf("%s: StableCodes is not a composite literal", path)
		}
		for _, el := range lit.Elts {
			bl, ok := el.(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				t.Fatalf("%s: StableCodes element at %s is not a string literal", path, fset.Position(el.Pos()))
			}
			s, err := strconv.Unquote(bl.Value)
			if err != nil {
				t.Fatal(err)
			}
			codes = append(codes, s)
		}
		return false
	})
	if len(codes) == 0 {
		t.Fatalf("no StableCodes slice found in %s", path)
	}
	return codes
}

// readmeCodes extracts every `code` mentioned in the README's stable
// codes paragraph (the text between "Codes are part of the contract"
// and the following blank line).
func readmeCodes(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(repoRoot(t), "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	start := strings.Index(text, "Codes are part of the contract")
	if start < 0 {
		t.Fatal("README: stable-codes paragraph not found")
	}
	text = text[start:]
	if end := strings.Index(text, "\n\n"); end >= 0 {
		text = text[:end]
	}
	var codes []string
	for _, m := range regexp.MustCompile("`([a-z_]+)`").FindAllStringSubmatch(text, -1) {
		codes = append(codes, m[1])
	}
	return codes
}

// emittedCodes scans the daemon's non-test sources for string
// literals in the code position of httpError and reject calls — the
// same sink sites the tracelint errcode analyzer checks.
func emittedCodes(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, e.Name(), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var idx int
			switch callee(call) {
			case "httpError":
				idx = 2
			case "reject":
				idx = 4
			default:
				return true
			}
			if idx >= len(call.Args) {
				return true
			}
			if bl, ok := call.Args[idx].(*ast.BasicLit); ok && bl.Kind == token.STRING {
				s, err := strconv.Unquote(bl.Value)
				if err == nil {
					seen[s] = true
				}
			}
			return true
		})
	}
	codes := make([]string, 0, len(seen))
	for c := range seen {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	return codes
}

func callee(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func sorted(s []string) []string {
	out := slices.Clone(s)
	sort.Strings(out)
	return out
}

func TestStableCodeSync(t *testing.T) {
	daemon := sorted(stableCodes)
	if d := slices.Compact(slices.Clone(daemon)); len(d) != len(daemon) {
		t.Errorf("codes.go stableCodes has duplicates")
	}

	if analyzer := sorted(analyzerCodes(t)); !slices.Equal(daemon, analyzer) {
		t.Errorf("codes.go and tracelint errcode.StableCodes disagree:\n daemon:   %v\n analyzer: %v",
			daemon, analyzer)
	}
	if readme := sorted(readmeCodes(t)); !slices.Equal(daemon, readme) {
		t.Errorf("codes.go and the README stable-codes paragraph disagree:\n daemon: %v\n README: %v",
			daemon, readme)
	}

	// Every literal the daemon's sink call sites hand to httpError /
	// reject must be declared. (Subset, not equality: some codes reach
	// the envelope through variables, e.g. ValidationError.Code.)
	declared := map[string]bool{}
	for _, c := range daemon {
		declared[c] = true
	}
	for _, c := range emittedCodes(t) {
		if !declared[c] {
			t.Errorf("daemon emits code %q that codes.go does not declare", c)
		}
	}
}
