package main

// stableCodes is the complete stable error-code vocabulary of the v1
// API: every code httpError or reject can be handed, and the set the
// README's "stable codes" paragraph promises clients. Three copies of
// this vocabulary exist on purpose — this one (the daemon's truth),
// the README paragraph (the client-facing contract), and
// errcode.StableCodes in tools/tracelint (the compile-time gate on
// call-site literals) — and TestStableCodeSync fails the build of
// whichever copy drifts.
//
// Grow it deliberately: a new code is a contract extension clients
// must be able to switch on, not a convenience for one handler.
var stableCodes = []string{
	"bad_cursor",
	"bad_device_config",
	"bad_format",
	"bad_json",
	"bad_limit",
	"bad_spec",
	"bad_stream_spec",
	"bad_trace",
	"config_mismatch",
	"corpus_disabled",
	"format_conflict",
	"internal",
	"job_not_finished",
	"method_not_allowed",
	"missing_input",
	"not_found",
	"payload_too_large",
	"queue_full",
	"quota_exceeded",
	"rate_limited",
	"result_evicted",
	"shutting_down",
	"trace_evicted",
	"unauthorized",
	"unknown_device",
	"unknown_format",
	"unknown_job",
	"unknown_method",
	"unknown_trace",
}
