package main

// The job journal is an append-only JSONL file under the daemon's
// data directory: one "submit" record when a job is accepted, one
// "done" or "fail" record when it finishes. On startup the journal is
// replayed — finished jobs are restored (results resolve from the
// user's output path or the result cache), and jobs with a submit but
// no finish were interrupted by a crash and re-queue. A torn final
// line (crash mid-append) is ignored.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/faultfs"
)

// Journal record operations.
const (
	journalSubmit = "submit"
	journalDone   = "done"
	journalFail   = "fail"
)

// journalRecord is one journal line.
type journalRecord struct {
	Op   string    `json:"op"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`
	// Submit payload.
	Spec   *engine.JobSpec `json:"spec,omitempty"`
	Digest string          `json:"digest,omitempty"`
	Tenant string          `json:"tenant,omitempty"`
	// Finish payload.
	Key     string     `json:"key,omitempty"`
	OutPath string     `json:"out_path,omitempty"`
	Cached  bool       `json:"cached,omitempty"`
	Report  *jobReport `json:"report,omitempty"`
	Error   string     `json:"error,omitempty"`
	// TraceID names the W3C trace the job files under: the submitting
	// request's trace on submit records, the executed trace on done
	// records — so restored jobs keep their trace identity even though
	// the timeline itself dies with the old process.
	TraceID string `json:"trace_id,omitempty"`
}

// journal is the append handle; writes are serialized and synced per
// record, so a finished job survives an immediate crash.
type journal struct {
	path string

	// faults, when set (setFaults, test-only), injects write faults
	// into appends under faultfs.SinkJournal.
	faults *faultfs.Injector

	mu     sync.Mutex
	f      *os.File
	closed bool
}

// setFaults arms the journal with a write-fault injector. Test-only;
// call before appends begin.
func (j *journal) setFaults(in *faultfs.Injector) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.faults = in
}

// openJournal reads every intact record of the journal at path (a
// missing file is an empty journal) and opens it for appending.
func openJournal(path string) (*journal, []journalRecord, error) {
	var recs []journalRecord
	if data, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(data)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var rec journalRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				// A torn tail from a crash mid-append is expected;
				// anything after it cannot be trusted either.
				fmt.Fprintf(os.Stderr, "tracetrackerd: journal: ignoring record after parse error: %v\n", err)
				break
			}
			recs = append(recs, rec)
		}
		data.Close()
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, nil, err
	}
	return &journal{path: path, f: f}, recs, nil
}

// append writes one record and syncs it to disk. Appends after close
// (an executor outliving the drain deadline) are dropped: the job
// stays "interrupted" in the journal and re-runs on the next start.
func (j *journal) append(rec journalRecord) {
	data, err := json.Marshal(rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetrackerd: journal: %v\n", err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if _, err := j.faults.Writer(faultfs.SinkJournal, j.f).Write(append(data, '\n')); err != nil {
		// The job stays "interrupted" in the journal (a torn tail is
		// tolerated by replay) and re-runs on the next start.
		fmt.Fprintf(os.Stderr, "tracetrackerd: journal: %v\n", err)
		return
	}
	if err := j.f.Sync(); err != nil {
		fmt.Fprintf(os.Stderr, "tracetrackerd: journal: %v\n", err)
	}
}

// close flushes and closes the journal; later appends are dropped.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.f.Sync()
	j.f.Close()
}

// compactAndClose atomically rewrites the journal to exactly recs and
// closes it. A clean shutdown calls this with the retained jobs'
// records, so the journal stays bounded by the retention caps instead
// of growing with the daemon's whole history. On any failure the
// existing journal is left as it was — replay tolerates the longer
// form.
func (j *journal) compactAndClose(recs []journalRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.f.Sync()
	j.f.Close()

	var buf []byte
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracetrackerd: journal compact: %v\n", err)
			return
		}
		buf = append(buf, data...)
		buf = append(buf, '\n')
	}
	tmp := j.path + ".compact"
	if err := os.WriteFile(tmp, buf, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "tracetrackerd: journal compact: %v\n", err)
		return
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		fmt.Fprintf(os.Stderr, "tracetrackerd: journal compact: %v\n", err)
	}
}
