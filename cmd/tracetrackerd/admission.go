package main

// Admission control: the daemon's front door. Identity comes from API
// keys mapping to tenant names (anonymous mode when no keys are
// configured, so loopback deployments and tests keep working
// unchanged); overload protection comes from token-bucket request
// rate limits (global and per tenant) and the bounded job queue; and
// per-tenant quotas — corpus bytes stored, concurrent jobs, job
// submissions per minute — keep one tenant from starving the rest.
// Every rejection increments daemon_rejected_total{reason,tenant}.
//
// Admission lives entirely here at the HTTP layer: the engine hot
// path is untouched (engine/zeroalloc_test.go still bounds it).

import (
	"bufio"
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// anonTenant is the identity of unauthenticated requests when no key
// table is configured (anonymous mode).
const anonTenant = "anon"

// authKeysEnv supplies inline comma-separated tenant:key pairs when
// the -auth-keys flag is unset.
const authKeysEnv = "TRACETRACKERD_AUTH_KEYS"

// authKey is one configured credential.
type authKey struct {
	key    []byte
	tenant string
}

// authTable maps API keys to tenants. nil means anonymous mode.
type authTable struct {
	keys []authKey
}

// lookup finds the tenant for key, comparing against every configured
// key in constant time so response timing cannot leak how much of a
// guessed key matched.
func (t *authTable) lookup(key string) (string, bool) {
	kb := []byte(key)
	tenant, found := "", false
	for _, ak := range t.keys {
		if len(ak.key) == len(kb) && subtle.ConstantTimeCompare(ak.key, kb) == 1 && !found {
			tenant, found = ak.tenant, true
		}
	}
	return tenant, found
}

// parseAuthKeys reads a key table: one tenant:key per line, blank
// lines and #-comments skipped.
func parseAuthKeys(r io.Reader) (*authTable, error) {
	t := &authTable{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		tenant, key, ok := strings.Cut(s, ":")
		tenant, key = strings.TrimSpace(tenant), strings.TrimSpace(key)
		if !ok || tenant == "" || key == "" {
			return nil, fmt.Errorf("auth keys: line %d: want tenant:key", line)
		}
		t.keys = append(t.keys, authKey{key: []byte(key), tenant: tenant})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.keys) == 0 {
		return nil, fmt.Errorf("auth keys: no tenant:key entries")
	}
	return t, nil
}

// loadAuthKeys resolves the key table from the -auth-keys path, then
// the TRACETRACKERD_AUTH_KEYS env var (inline, comma-separated). A nil
// table with nil error means anonymous mode.
func loadAuthKeys(path string) (*authTable, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		t, err := parseAuthKeys(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return t, nil
	}
	if env := os.Getenv(authKeysEnv); env != "" {
		t, err := parseAuthKeys(strings.NewReader(strings.ReplaceAll(env, ",", "\n")))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", authKeysEnv, err)
		}
		return t, nil
	}
	return nil, nil
}

// apiKeyFrom extracts the client's API key: Authorization: Bearer
// <key>, or the X-API-Key header.
func apiKeyFrom(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return r.Header.Get("X-API-Key")
}

// checkAddrGuard refuses a non-loopback listen address unless auth is
// configured or the operator explicitly opted out with -insecure: the
// API reads and writes server-side paths, so exposing it anonymously
// beyond the host must be a deliberate act.
func checkAddrGuard(addr string, authConfigured, insecure bool) error {
	if authConfigured || insecure {
		return nil
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	if host == "localhost" {
		return nil
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsLoopback() {
		return nil
	}
	return fmt.Errorf("refusing to listen on non-loopback %q without auth: configure -auth-keys (or %s), or pass -insecure to accept anonymous remote access",
		addr, authKeysEnv)
}

// tokenBucket is a classic token-bucket limiter: capacity burst,
// refilled at rate tokens/second. take reports whether a token was
// available and, when not, how long until one will be.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (b *tokenBucket) take() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// level reports the current token count (for gauges); it does not
// refill, so an idle bucket reads at its last drained level.
func (b *tokenBucket) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// quotaConfig is the per-tenant quota table (0 = unlimited), shared by
// every tenant.
type quotaConfig struct {
	// CorpusBytes caps the total blob bytes a tenant has stored in the
	// corpus; enforced before and during upload.
	CorpusBytes int64
	// ConcurrentJobs caps a tenant's queued+running jobs at submit.
	ConcurrentJobs int
	// JobsPerMin caps a tenant's job submissions per minute (token
	// bucket with burst = quota).
	JobsPerMin int
}

// admission is the server's admission-control state.
type admission struct {
	auth  *authTable // nil = anonymous mode
	quota quotaConfig

	global      *tokenBucket // nil = unlimited
	tenantRate  float64      // per-tenant request bucket (0 = unlimited)
	tenantBurst float64

	mu         sync.Mutex
	tenants    map[string]*tokenBucket // per-tenant request buckets
	jobBuckets map[string]*tokenBucket // per-tenant jobs/min buckets
}

// tenantBucket returns (lazily creating) the per-tenant request-rate
// bucket, or nil when per-tenant limiting is off.
func (a *admission) tenantBucket(tenant string) *tokenBucket {
	if a.tenantRate <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tenants == nil {
		a.tenants = make(map[string]*tokenBucket)
	}
	b, ok := a.tenants[tenant]
	if !ok {
		b = newTokenBucket(a.tenantRate, a.tenantBurst)
		a.tenants[tenant] = b
	}
	return b
}

// jobBucket returns (lazily creating) the per-tenant jobs/min bucket,
// or nil when the quota is off.
func (a *admission) jobBucket(tenant string) *tokenBucket {
	q := a.quota.JobsPerMin
	if q <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.jobBuckets == nil {
		a.jobBuckets = make(map[string]*tokenBucket)
	}
	b, ok := a.jobBuckets[tenant]
	if !ok {
		b = newTokenBucket(float64(q)/60, float64(q))
		a.jobBuckets[tenant] = b
	}
	return b
}

// trackedTenants counts tenants with live rate state (for a gauge).
func (a *admission) trackedTenants() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.tenants)
	if len(a.jobBuckets) > n {
		n = len(a.jobBuckets)
	}
	return n
}

// errCorpusQuota marks an upload cut off mid-stream by the tenant's
// corpus-bytes quota.
var errCorpusQuota = errors.New("corpus-bytes quota exceeded")

// quotaReader passes through at most remaining bytes, then fails with
// errCorpusQuota — bounding a streaming upload by what the tenant may
// still store without buffering it. An upload that ends exactly at
// the boundary is allowed through.
type quotaReader struct {
	r         io.Reader
	remaining int64
}

func (q *quotaReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if q.remaining <= 0 {
		// Only over quota if more bytes are actually coming.
		var one [1]byte
		n, err := q.r.Read(one[:])
		if n > 0 {
			return 0, errCorpusQuota
		}
		return 0, err
	}
	if int64(len(p)) > q.remaining {
		p = p[:q.remaining]
	}
	n, err := q.r.Read(p)
	q.remaining -= int64(n)
	return n, err
}

type tenantCtxKey struct{}

// withTenant binds the authenticated tenant to the request context.
func withTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// tenantFrom returns the request's tenant (anonTenant outside an
// admitted request, e.g. in direct handler tests).
func tenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantCtxKey{}).(string); ok {
		return t
	}
	return anonTenant
}

// retryAfterSeconds renders a Retry-After header value: whole
// seconds, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
