// Command tracetrackerd is the batch reconstruction job server: a
// long-running HTTP daemon that runs whole-corpus reconstructions on
// the sharded parallel engine (internal/engine).
//
// Jobs are JSON engine.JobSpec documents naming an input trace on the
// server's filesystem, the method, and optionally an output path and
// the streaming mode for larger-than-memory corpora. The API is
// unauthenticated and reads/writes server-side paths, so it listens
// on loopback by default; front it with real auth before exposing it.
//
//	tracetrackerd -jobs 2 -parallel 8
//
//	curl -s -X POST localhost:8080/jobs \
//	  -d '{"in":"/traces/web_0.csv","method":"tracetracker","parallel":8}'
//	curl -s localhost:8080/jobs/job-1          # status + report
//	curl -s localhost:8080/jobs/job-1/result   # reconstructed trace
//
// See the README's "tracetrackerd API" section for the full surface.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080",
		"listen address (loopback by default: the API is unauthenticated and job specs name server-side file paths)")
	jobs := flag.Int("jobs", 2, "concurrent job executors")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "engine workers per job")
	minIdleGap := flag.Duration("min-idle-gap", time.Millisecond, "epoch cut threshold")
	maxShard := flag.Int("max-shard", 0, "max requests per shard (0 = engine default)")
	retain := flag.Int("retain", 0, "finished in-memory results kept before eviction (0 = default)")
	flag.Parse()

	base := engine.Config{
		Workers:          *parallel,
		MinIdleGap:       *minIdleGap,
		MaxShardRequests: *maxShard,
	}
	srv := newServer(base, *jobs, *retain)

	fmt.Fprintf(os.Stderr, "tracetrackerd: listening on %s (%d executors x %d workers)\n",
		*addr, *jobs, *parallel)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintf(os.Stderr, "tracetrackerd: %v\n", err)
		os.Exit(1)
	}
}
