// Command tracetrackerd is the batch reconstruction job server: a
// long-running HTTP daemon that runs whole-corpus reconstructions on
// the sharded parallel engine (internal/engine), backed by a
// content-addressed trace corpus (internal/corpus) when started with
// -data.
//
// Jobs are JSON engine.JobSpec documents naming an input trace — a
// server-side path, or "corpus:<digest>" for a trace previously
// uploaded to POST /v1/corpus — plus the method, the reconstruction
// target (array/ssd/hdd/ftl/host, with nested ftl_config/host_config
// knobs discoverable from GET /v1/devices), and optionally an output
// path and the streaming mode for larger-than-memory corpora. With
// -data, results of corpus jobs are cached by (input digest, job
// fingerprint): resubmitting an equivalent job serves the cached bytes
// without reconstructing, and a journal replays finished and
// interrupted jobs across restarts. The API is unauthenticated and
// reads/writes server-side paths, so it listens on loopback by
// default; front it with real auth before exposing it.
//
// The API is versioned under /v1 (the pre-v1 unversioned routes stay
// mounted as aliases, counted by daemon_legacy_requests_total), and
// every non-2xx response carries the structured envelope
// {"error":{"code":"...","message":"..."}} with a stable code.
//
//	tracetrackerd -jobs 2 -parallel 8 -data /var/lib/tracetracker
//
//	curl -s -X POST --data-binary @web_0.csv localhost:8080/v1/corpus
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"in":"corpus:<digest>","method":"tracetracker","parallel":8}'
//	curl -s localhost:8080/v1/jobs/job-1          # status + report
//	curl -s localhost:8080/v1/jobs/job-1/result   # reconstructed trace
//	curl -s localhost:8080/v1/jobs/job-1/trace    # span timeline (?format=perfetto)
//	curl -s localhost:8080/v1/devices             # target capability catalogue
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains running
// jobs up to -drain, flushes the journal and exits; interrupted jobs
// re-run on the next start.
//
// See the README's "tracetrackerd API" section for the full surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080",
		"listen address (loopback by default: the API is unauthenticated and job specs name server-side file paths)")
	jobs := flag.Int("jobs", 2, "concurrent job executors")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"engine workers per job, and decode workers for corpus uploads (<2 = sequential ingest)")
	minIdleGap := flag.Duration("min-idle-gap", time.Millisecond, "epoch cut threshold")
	maxShard := flag.Int("max-shard", 0, "max requests per shard (0 = engine default)")
	retain := flag.Int("retain", 0, "finished in-memory results kept before eviction (0 = default)")
	dataDir := flag.String("data", "",
		"corpus data directory: enables /corpus uploads, corpus:<digest> job inputs, result caching, and crash recovery via the job journal")
	drain := flag.Duration("drain", 30*time.Second,
		"graceful-shutdown deadline for running jobs on SIGINT/SIGTERM")
	traceRing := flag.Int("trace-ring", obs.DefaultFlightRecorderCapacity,
		"finished-job span timelines kept for GET /jobs/{id}/trace before eviction")
	slowJob := flag.Duration("slow-job", time.Minute,
		"log a job's slowest spans when its wall time crosses this threshold (0 disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text, json")
	pprofOn := flag.Bool("pprof", false,
		"serve net/http/pprof under /debug/pprof/ (off by default: profiles expose internals)")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetrackerd: %v\n", err)
		os.Exit(1)
	}

	base := engine.Config{
		Workers:          *parallel,
		MinIdleGap:       *minIdleGap,
		MaxShardRequests: *maxShard,
	}
	srv := newServer(base, *jobs, *retain)
	srv.ingestParallel = *parallel
	srv.flight.SetCapacity(*traceRing)
	srv.slowJob = *slowJob
	srv.setLogger(log)
	if *pprofOn {
		srv.enablePprof()
	}
	if *dataDir != "" {
		if err := srv.openData(*dataDir); err != nil {
			log.Error("data directory failed to open", "dir", *dataDir, "error", err)
			os.Exit(1)
		}
		log.Info("corpus store attached", "dir", *dataDir, "traces", srv.store.Len())
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("listening", "addr", *addr, "executors", *jobs, "workers", *parallel,
		"revision", srv.revision, "pprof", *pprofOn)
	select {
	case err := <-errc:
		log.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately

	log.Info("shutting down, draining jobs", "deadline", *drain)
	// One deadline covers both phases: in-flight HTTP responses and
	// running executors share -drain rather than each getting it.
	deadline := time.Now().Add(*drain)
	sctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	hs.Shutdown(sctx)
	remain := time.Until(deadline)
	if remain <= 0 {
		remain = time.Millisecond
	}
	if !srv.CloseGrace(remain) {
		log.Warn("drain deadline hit; interrupted jobs will re-run on next start")
	}
}
