// Command tracetrackerd is the batch reconstruction job server: a
// long-running HTTP daemon that runs whole-corpus reconstructions on
// the sharded parallel engine (internal/engine), backed by a
// content-addressed trace corpus (internal/corpus) when started with
// -data.
//
// Jobs are JSON engine.JobSpec documents naming an input trace — a
// server-side path, or "corpus:<digest>" for a trace previously
// uploaded to POST /v1/corpus — plus the method, the reconstruction
// target (array/ssd/hdd/ftl/host, with nested ftl_config/host_config
// knobs discoverable from GET /v1/devices), and optionally an output
// path and the streaming mode for larger-than-memory corpora. With
// -data, results of corpus jobs are cached by (input digest, job
// fingerprint): resubmitting an equivalent job serves the cached bytes
// without reconstructing, and a journal replays finished and
// interrupted jobs across restarts.
//
// The daemon listens on loopback by default and runs anonymously
// there; to expose it beyond the host, configure API-key
// authentication with -auth-keys (or TRACETRACKERD_AUTH_KEYS) — keys
// map to tenant names, and per-tenant quotas (-quota-corpus-bytes,
// -quota-concurrent-jobs, -quota-jobs-per-min), rate limits (-rate,
// -tenant-rate), the bounded job queue (-queue), the upload cap
// (-max-upload-bytes) and the server timeouts shed overload instead
// of degrading. A non-loopback -addr without auth keys is refused
// unless -insecure explicitly accepts anonymous remote access.
//
// The API is versioned under /v1 (the pre-v1 unversioned routes stay
// mounted as aliases, counted by daemon_legacy_requests_total), and
// every non-2xx response carries the structured envelope
// {"error":{"code":"...","message":"..."}} with a stable code.
//
//	tracetrackerd -jobs 2 -parallel 8 -data /var/lib/tracetracker
//
//	curl -s -X POST --data-binary @web_0.csv localhost:8080/v1/corpus
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"in":"corpus:<digest>","method":"tracetracker","parallel":8}'
//	curl -s localhost:8080/v1/jobs/job-1          # status + report
//	curl -s localhost:8080/v1/jobs/job-1/result   # reconstructed trace
//	curl -s localhost:8080/v1/jobs/job-1/trace    # span timeline (?format=perfetto)
//	curl -s localhost:8080/v1/devices             # target capability catalogue
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains running
// jobs up to -drain, flushes the journal and exits; interrupted jobs
// re-run on the next start.
//
// See the README's "tracetrackerd API" section for the full surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080",
		"listen address (loopback by default; non-loopback requires -auth-keys or -insecure: job specs name server-side file paths)")
	jobs := flag.Int("jobs", 2, "concurrent job executors")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"engine workers per job, and decode workers for corpus uploads (<2 = sequential ingest)")
	minIdleGap := flag.Duration("min-idle-gap", time.Millisecond, "epoch cut threshold")
	maxShard := flag.Int("max-shard", 0, "max requests per shard (0 = engine default)")
	retain := flag.Int("retain", 0, "finished in-memory results kept before eviction (0 = default)")
	dataDir := flag.String("data", "",
		"corpus data directory: enables /corpus uploads, corpus:<digest> job inputs, result caching, and crash recovery via the job journal")
	drain := flag.Duration("drain", 30*time.Second,
		"graceful-shutdown deadline for running jobs on SIGINT/SIGTERM")
	traceRing := flag.Int("trace-ring", obs.DefaultFlightRecorderCapacity,
		"finished-job span timelines kept for GET /jobs/{id}/trace before eviction")
	slowJob := flag.Duration("slow-job", time.Minute,
		"log a job's slowest spans when its wall time crosses this threshold (0 disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text, json")
	pprofOn := flag.Bool("pprof", false,
		"serve net/http/pprof under /debug/pprof/ (off by default: profiles expose internals)")
	authKeys := flag.String("auth-keys", "",
		"API key file (one tenant:key per line, #-comments); enables auth: clients send Authorization: Bearer <key> or X-API-Key. Unset, the TRACETRACKERD_AUTH_KEYS env var (inline tenant:key,tenant:key) is tried; neither = anonymous mode")
	insecure := flag.Bool("insecure", false,
		"allow a non-loopback -addr without auth keys (dangerous: anonymous clients can read/write server-side paths)")
	queueCap := flag.Int("queue", defaultQueueCap,
		"job queue capacity; submissions beyond it answer 429 queue_full with a load-derived Retry-After")
	maxUpload := flag.Int64("max-upload-bytes", 1<<30,
		"largest accepted corpus upload body in bytes (0 = unlimited); larger bodies answer 413 payload_too_large")
	rate := flag.Float64("rate", 0, "global API request rate limit in req/s (0 = unlimited; burst 2x)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant API request rate limit in req/s (0 = unlimited; burst 2x)")
	quotaCorpus := flag.Int64("quota-corpus-bytes", 0, "per-tenant corpus bytes stored before uploads answer 403 quota_exceeded (0 = unlimited)")
	quotaJobs := flag.Int("quota-concurrent-jobs", 0, "per-tenant queued+running jobs before submits answer 403 quota_exceeded (0 = unlimited)")
	quotaJobsPerMin := flag.Int("quota-jobs-per-min", 0, "per-tenant job submissions per minute before submits answer 403 quota_exceeded (0 = unlimited)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second,
		"time a client gets to send request headers before the connection drops (slow-loris guard)")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute,
		"time a client gets to send a whole request, including a streaming upload body")
	writeTimeout := flag.Duration("write-timeout", 10*time.Minute,
		"time the server gets to write a whole response, including large result downloads")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute,
		"keep-alive connection idle time before the server closes it")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetrackerd: %v\n", err)
		os.Exit(1)
	}

	auth, err := loadAuthKeys(*authKeys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetrackerd: %v\n", err)
		os.Exit(1)
	}
	if err := checkAddrGuard(*addr, auth != nil, *insecure); err != nil {
		fmt.Fprintf(os.Stderr, "tracetrackerd: %v\n", err)
		os.Exit(1)
	}

	base := engine.Config{
		Workers:          *parallel,
		MinIdleGap:       *minIdleGap,
		MaxShardRequests: *maxShard,
	}
	srv := newServerCap(base, *jobs, *retain, *queueCap)
	srv.ingestParallel = *parallel
	srv.flight.SetCapacity(*traceRing)
	srv.slowJob = *slowJob
	srv.maxUpload = *maxUpload
	srv.setAuth(auth)
	srv.setRateLimits(*rate, *tenantRate)
	srv.adm.quota = quotaConfig{
		CorpusBytes:    *quotaCorpus,
		ConcurrentJobs: *quotaJobs,
		JobsPerMin:     *quotaJobsPerMin,
	}
	srv.setLogger(log)
	if *pprofOn {
		srv.enablePprof()
	}
	if *dataDir != "" {
		if err := srv.openData(*dataDir); err != nil {
			log.Error("data directory failed to open", "dir", *dataDir, "error", err)
			os.Exit(1)
		}
		log.Info("corpus store attached", "dir", *dataDir, "traces", srv.store.Len())
	}

	hs := newHTTPServer(*addr, srv, *readHeaderTimeout, *readTimeout, *writeTimeout, *idleTimeout)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("listening", "addr", *addr, "executors", *jobs, "workers", *parallel,
		"revision", srv.revision, "pprof", *pprofOn, "auth", auth != nil, "queue", *queueCap)
	select {
	case err := <-errc:
		log.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately

	log.Info("shutting down, draining jobs", "deadline", *drain)
	// One deadline covers both phases: in-flight HTTP responses and
	// running executors share -drain rather than each getting it.
	deadline := time.Now().Add(*drain)
	sctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	hs.Shutdown(sctx)
	remain := time.Until(deadline)
	if remain <= 0 {
		remain = time.Millisecond
	}
	if !srv.CloseGrace(remain) {
		log.Warn("drain deadline hit; interrupted jobs will re-run on next start")
	}
}

// newHTTPServer assembles the hardened http.Server around the daemon
// handler: header/read/write/idle deadlines so clients that trickle
// bytes (slow loris) or never read their response are disconnected
// instead of pinning connections and goroutines.
func newHTTPServer(addr string, h http.Handler, readHeader, read, write, idle time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: readHeader,
		ReadTimeout:       read,
		WriteTimeout:      write,
		IdleTimeout:       idle,
	}
}
