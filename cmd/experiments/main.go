// Command experiments regenerates the paper's tables and figures on
// the simulated substrate.
//
// Usage:
//
//	experiments [-ops N] [-seed S] <exp> [<exp>...]
//	experiments all
//
// where <exp> is one of: fig1 fig3 fig5 fig7a fig7b fig9 table1 fig10
// fig11 fig12 fig13 fig14 fig15 fig16 fig17 claims.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
)

type runner func(cfg experiments.Config, w io.Writer) error

var registry = map[string]runner{
	"fig1": func(cfg experiments.Config, w io.Writer) error {
		experiments.Fig1(cfg).Render(w)
		return nil
	},
	"fig3": func(cfg experiments.Config, w io.Writer) error {
		experiments.Fig3(cfg).Render(w)
		return nil
	},
	"fig5": func(cfg experiments.Config, w io.Writer) error {
		experiments.Fig5(cfg).Render(w)
		return nil
	},
	"fig7a": func(cfg experiments.Config, w io.Writer) error {
		experiments.Fig7a(cfg).Render(w)
		return nil
	},
	"fig7b": func(cfg experiments.Config, w io.Writer) error {
		experiments.Fig7b(cfg).Render(w)
		return nil
	},
	"fig9": func(cfg experiments.Config, w io.Writer) error {
		experiments.Fig9(cfg).Render(w)
		return nil
	},
	"table1": func(cfg experiments.Config, w io.Writer) error {
		experiments.Table1(cfg).Render(w)
		return nil
	},
	"fig10": func(cfg experiments.Config, w io.Writer) error {
		experiments.Fig10(cfg).Render(w)
		return nil
	},
	"fig11": func(cfg experiments.Config, w io.Writer) error {
		experiments.Fig11(cfg).Render(w)
		return nil
	},
	"fig12": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig12(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"fig13": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig13(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"fig14": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig14(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"fig15": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig15(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"fig16": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig16(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"fig17": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Fig17(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"ext-sweep": func(cfg experiments.Config, w io.Writer) error {
		experiments.FixedThSweep(cfg).Render(w)
		return nil
	},
	"ext-similarity": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Similarity(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"ext-groundtruth": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.GroundTruth(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"ext-ftl": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.FTLImpact(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"ext-cache": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.CacheImpact(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
	"claims": func(cfg experiments.Config, w io.Writer) error {
		r, err := experiments.Claims(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	},
}

// order fixes the "all" sequence to the paper's presentation order.
var order = []string{
	"fig1", "fig3", "fig5", "fig7a", "fig7b", "fig9", "table1",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
	"fig17", "claims", "ext-sweep", "ext-similarity", "ext-groundtruth", "ext-ftl", "ext-cache",
}

func main() {
	ops := flag.Int("ops", 4000, "I/O instructions per generated trace")
	seed := flag.Int64("seed", 0, "seed offset for sensitivity checks")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Ops: *ops, Seed: *seed}
	names := args
	if len(args) == 1 && args[0] == "all" {
		names = order
	}
	for _, name := range names {
		run, ok := registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("--- %s ---\n", name)
		if err := run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: experiments [-ops N] [-seed S] <exp> [<exp>...] | all\n\nexperiments:\n")
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %s\n", n)
	}
}
