package main

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
)

// TestOrderCoversRegistry keeps the "all" sequence and the registry in
// sync: every registered experiment appears exactly once in the order.
func TestOrderCoversRegistry(t *testing.T) {
	seen := map[string]int{}
	for _, name := range order {
		seen[name]++
		if _, ok := registry[name]; !ok {
			t.Errorf("order entry %q not in registry", name)
		}
	}
	for name := range registry {
		if seen[name] != 1 {
			t.Errorf("registry entry %q appears %d times in order", name, seen[name])
		}
	}
}

// TestRunnersProduceOutput exercises the cheap runners end to end via
// the same entry points main uses.
func TestRunnersProduceOutput(t *testing.T) {
	cfg := experiments.Config{Ops: 800}
	for _, name := range []string{"fig9", "fig5", "table1"} {
		var buf bytes.Buffer
		if err := registry[name](cfg, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}
