// Command tracegen synthesizes block traces for the Table I workload
// families by executing the application model against the simulated
// OLD (HDD) or NEW (all-flash-array) system.
//
// Usage:
//
//	tracegen -workload ikki -ops 100000 -out ikki.csv
//	tracegen -workload MSNFS -device new -format bin -out msnfs.bin
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/device"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "", "workload family (see -list)")
	ops := flag.Int("ops", 50000, "number of I/O instructions")
	seed := flag.Int64("seed", 1, "generation seed")
	idx := flag.Int("index", 0, "trace index within the family (derives the seed with -seed as offset)")
	dev := flag.String("device", "old", `collection device: "old" (HDD) or "new" (all-flash array)`)
	format := flag.String("format", "csv", `output format: "csv" or "bin"`)
	out := flag.String("out", "", "output path (default stdout)")
	list := flag.Bool("list", false, "list workload families and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-5s %8s %8s %8s\n", "workload", "set", "#traces", "avgKB", "totalGB")
		for _, p := range workload.Profiles() {
			fmt.Printf("%-14s %-5s %8d %8.2f %8.1f\n", p.Name, p.Set, p.NumTraces, p.AvgKB, p.TotalGB)
		}
		fmt.Printf("%-14s %-5s %8s %8.2f %8.1f (extra, Figs 1/3)\n", "Exchange", "MSPS", "-", 12.5, 600.0)
		return
	}
	p, ok := workload.Lookup(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q (try -list)\n", *name)
		os.Exit(2)
	}
	var d device.Device
	switch *dev {
	case "old":
		d = device.NewHDD(device.DefaultHDDConfig())
	case "new":
		d = device.NewArray(device.DefaultArrayConfig())
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown device %q\n", *dev)
		os.Exit(2)
	}

	app := workload.Generate(p, workload.GenOptions{
		Ops:  *ops,
		Seed: workload.TraceSeed(p.Name, *idx) ^ *seed,
	})
	res := app.Execute(d)
	tr := res.Trace
	tr.Name = fmt.Sprintf("%s-%02d", p.Name, *idx)
	tr.Workload = p.Name
	tr.Set = p.Set
	tr.TsdevKnown = p.TsdevKnown
	if !p.TsdevKnown {
		for i := range tr.Requests {
			tr.Requests[i].Latency = 0
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = trace.WriteCSV(w, tr)
	case "bin":
		err = trace.WriteBinary(w, tr)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d requests (%s, %s) spanning %v\n",
		tr.Len(), p.Name, d.Name(), tr.Duration())
}
