// Command tracestat characterizes a block trace: request mix,
// inter-arrival distribution, per-group CDF shapes, and the fitted
// inference model — the paper's software-evaluation stage as a
// standalone analysis tool.
//
// -stream computes the summary in one pass over the streaming decoder
// with bounded memory, so corpora larger than RAM can be characterized
// (per-group classification and the model fit need the materialized
// trace and are skipped in this mode).
//
// Usage:
//
//	tracestat -in trace.csv
//	tracestat -in week.bin -informat auto -stream
//	tracegen -workload ikki | tracestat
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/infer"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace path (default stdin)")
	informat := flag.String("informat", "csv", `input format: "csv", "bin", "msrc", "spc", or "auto" (content sniffing)`)
	groups := flag.Bool("groups", true, "print per-group classification")
	stream := flag.Bool("stream", false,
		"one-pass streaming summary with bounded memory (skips groups and the model fit)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"decode workers for -stream file inputs (stdin always decodes sequentially)")
	flag.Parse()

	if *stream {
		if err := runStream(*in, *informat, *parallel); err != nil {
			fatal(err)
		}
		return
	}

	tr, err := readTrace(*in, *informat)
	if err != nil {
		fatal(err)
	}
	if err := tr.Validate(); err != nil {
		fatal(fmt.Errorf("input: %w", err))
	}

	t := &report.Table{Title: "trace summary", Headers: []string{"metric", "value"}}
	t.AddRow("name", tr.Name)
	t.AddRow("workload", tr.Workload)
	t.AddRow("set", tr.Set)
	t.AddRow("requests", tr.Len())
	t.AddRow("duration", tr.Duration())
	t.AddRow("total MB", fmt.Sprintf("%.1f", float64(tr.TotalBytes())/1e6))
	t.AddRow("avg request KB", fmt.Sprintf("%.2f", tr.AvgRequestBytes()/1024))
	t.AddRow("read fraction", report.Percent(tr.ReadFraction()))
	t.AddRow("sequential fraction", report.Percent(tr.SeqFraction()))
	t.AddRow("tsdev known", tr.TsdevKnown)
	t.Render(os.Stdout)

	ia := tr.InterArrivalMicros()
	if s, err := stats.Summarize(ia); err == nil {
		it := &report.Table{Title: "inter-arrival times", Headers: []string{"metric", "value"}}
		it.AddRow("mean", usDur(s.Mean))
		it.AddRow("median", usDur(s.Median))
		it.AddRow("p90", usDur(s.P90))
		it.AddRow("p99", usDur(s.P99))
		it.AddRow("max", usDur(s.Max))
		it.Render(os.Stdout)
	}

	if *groups {
		g := infer.Classify(tr)
		gt := &report.Table{
			Title:   "instruction groups (seq/op/size)",
			Headers: []string{"seq", "op", "sectors", "n", "shape", "rise"},
		}
		for _, seq := range []bool{true, false} {
			for _, op := range []trace.Op{trace.Read, trace.Write} {
				for _, grp := range g.Select(seq, op, 1) {
					shape := infer.ClassifyShape(grp.InttMicros)
					res, ok := infer.ExamineSteepness(grp.InttMicros, infer.DefaultSteepnessOptions())
					rise := "-"
					if ok {
						rise = report.FormatDuration(usDurD(res.RiseMicros))
					}
					gt.AddRow(seq, op, grp.Key.Sectors, grp.N(), shape.String(), rise)
				}
			}
		}
		gt.Render(os.Stdout)
	}

	if m, err := infer.Estimate(tr, infer.EstimateOptions{}); err == nil {
		mt := &report.Table{Title: "fitted inference model", Headers: []string{"parameter", "value"}}
		mt.AddRow("beta (us/sector)", m.BetaMicros)
		mt.AddRow("eta (us/sector)", m.EtaMicros)
		mt.AddRow("Tcdel read", usDurD(m.TcdelReadMicros))
		mt.AddRow("Tcdel write", usDurD(m.TcdelWriteMicros))
		mt.AddRow("Tmovd", usDurD(m.TmovdMicros))
		idle, async := infer.Decompose(m, tr)
		var idleTotal time.Duration
		idleCount, asyncCount := 0, 0
		for _, d := range idle {
			if d > 0 {
				idleCount++
				idleTotal += d
			}
		}
		for _, a := range async {
			if a {
				asyncCount++
			}
		}
		mt.AddRow("idle instructions", idleCount)
		mt.AddRow("total idle", idleTotal)
		mt.AddRow("async instructions", asyncCount)
		mt.Render(os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "tracestat: model fit skipped: %v\n", err)
	}
}

func usDur(v float64) time.Duration  { return time.Duration(v * float64(time.Microsecond)) }
func usDurD(v float64) time.Duration { return time.Duration(v * float64(time.Microsecond)) }

// runStream prints the one-pass summary: the whole-trace metrics the
// materializing path shows, computed over the streaming decoder (with
// a bounded reorder window for the near-sorted corpora) so memory
// stays constant regardless of trace size. File inputs big enough to
// split decode on parallel workers; stdin falls back to the
// sequential decoder (no ReaderAt to segment).
func runStream(path, format string, parallel int) error {
	var (
		dec     trace.Decoder
		closeIn func()
	)
	if path != "" {
		d, resolved, closeDec, err := trace.OpenFileDecoder(path, format, parallel)
		if err != nil {
			return err
		}
		dec, format, closeIn = d, resolved, closeDec
	} else {
		r, closeStdin, err := openInput(path)
		if err != nil {
			return err
		}
		closeIn = closeStdin
		if format == "auto" {
			if format, r, err = trace.SniffFormat(r); err != nil {
				return err
			}
		}
		if dec, err = trace.NewDecoder(format, r); err != nil {
			return err
		}
	}
	defer closeIn()
	if trace.NeedsSort(format) {
		dec = trace.NewReorderDecoder(dec, engine.DefaultReorderWindow)
	}
	sum, err := trace.Summarize(dec)
	if err != nil {
		return err
	}
	if sum.Requests == 0 {
		return fmt.Errorf("input: empty trace")
	}

	t := &report.Table{Title: "trace summary (streamed)", Headers: []string{"metric", "value"}}
	t.AddRow("name", sum.Meta.Name)
	t.AddRow("workload", sum.Meta.Workload)
	t.AddRow("set", sum.Meta.Set)
	t.AddRow("format", format)
	t.AddRow("requests", sum.Requests)
	t.AddRow("duration", sum.Duration())
	t.AddRow("total MB", fmt.Sprintf("%.1f", float64(sum.TotalBytes)/1e6))
	t.AddRow("avg request KB", fmt.Sprintf("%.2f", sum.AvgRequestBytes()/1024))
	t.AddRow("read fraction", report.Percent(sum.ReadFraction()))
	t.AddRow("sequential fraction", report.Percent(sum.SeqFraction()))
	t.AddRow("tsdev known", sum.Meta.TsdevKnown)
	t.Render(os.Stdout)

	it := &report.Table{Title: "inter-arrival times (one-pass moments)", Headers: []string{"metric", "value"}}
	it.AddRow("mean", usDur(sum.IntervalMeanUS))
	it.AddRow("stddev", usDur(sum.IntervalStdUS))
	it.AddRow("max", usDur(sum.IntervalMaxUS))
	it.Render(os.Stdout)
	return nil
}

// openInput opens path (or stdin for "").
func openInput(path string) (io.Reader, func(), error) {
	if path == "" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func readTrace(path, format string) (*trace.Trace, error) {
	r, closeIn, err := openInput(path)
	if err != nil {
		return nil, err
	}
	defer closeIn()
	return trace.ReadAuto(format, r)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
	os.Exit(1)
}
